"""Job execution: serial loop or ``multiprocessing`` worker pool.

The executor guarantees that for a fixed job list the *results are
independent of the worker count*: jobs are pure functions of their inputs
(every solver is deterministic), results are returned in job order, and all
aggregation downstream tie-breaks on the job index.  ``workers <= 1`` runs a
deterministic in-process loop; ``workers > 1`` fans the jobs out over a
process pool whose initializer ships the :class:`EngineContext` once and
warms each worker's Pareto caches (the dominant per-schedule cost).

Jobs are solved through the process-wide solver
:class:`~repro.solvers.session.Session` (see :mod:`repro.solvers`), so the
shared rectangle cache stays warm across every job a worker executes and
any registered schedule-producing solver can be swept by naming it in
:attr:`~repro.engine.jobs.ScheduleJob.solver`.

If a pool cannot be created at all -- sandboxes without working semaphores,
platforms without ``fork``/``spawn`` -- the engine silently degrades to the
serial path rather than failing the sweep.
"""

from __future__ import annotations

import multiprocessing
from typing import Iterable, List, Optional, Sequence

from repro.core.grid_sweep import preferred_pool_context
from repro.engine.jobs import EngineContext, EngineError, JobResult, ScheduleJob
from repro.engine.results import SweepResults
from repro.solvers.request import ScheduleRequest
from repro.solvers.session import get_default_session
from repro.wrapper.pareto import prime_pareto_cache

# Context installed in each pool worker by the initializer (fork workers
# inherit the parent's module state; spawn workers receive it via initargs).
_WORKER_CONTEXT: Optional[EngineContext] = None


def execute_job(job: ScheduleJob, context: EngineContext) -> JobResult:
    """Run one job to completion in the current process.

    The job is dispatched through the process-wide solver session, so its
    Pareto rectangle sets come from (and warm) the shared cache.
    """
    soc, constraints = context.resolve(job)
    result = get_default_session().solve(
        ScheduleRequest(
            soc=soc,
            total_width=job.width,
            solver=job.solver,
            config=job.config,
            constraints=constraints,
            options=job.solver_options(),
        )
    )
    if result.schedule is None:
        raise EngineError(
            f"solver {job.solver!r} produces no schedule and cannot run as an "
            "engine job"
        )
    return JobResult(
        job=job,
        makespan=result.makespan,
        data_volume=result.data_volume,
        schedule=result.schedule,
        metadata=tuple(sorted(result.metadata.items())),
        wall_time=result.wall_time,
        worker=multiprocessing.current_process().name,
    )


def prime_context_caches(context: EngineContext, max_widths: Iterable[int]) -> int:
    """Warm the Pareto caches for every SOC in the context.

    Both the per-process testing-time curve memo and the default solver
    session's rectangle cache are primed, so every subsequent solve of the
    same SOC skips wrapper design entirely.
    """
    session = get_default_session()
    primed = 0
    widths = sorted({int(width) for width in max_widths})
    for soc in context.socs.values():
        for max_width in widths:
            primed += prime_pareto_cache(soc.cores, max_width)
            session.rectangle_sets(soc, max_width)
    return primed


def _init_worker(context: EngineContext, max_widths: Sequence[int]) -> None:
    """Pool initializer: install the shared context, warm the caches."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context
    prime_context_caches(context, max_widths)


def _run_in_worker(job: ScheduleJob) -> JobResult:
    assert _WORKER_CONTEXT is not None, "worker used before initialization"
    return execute_job(job, _WORKER_CONTEXT)


def _run_serial(jobs: Sequence[ScheduleJob], context: EngineContext) -> SweepResults:
    prime_context_caches(context, (job.config.max_core_width for job in jobs))
    return SweepResults(tuple(execute_job(job, context) for job in jobs))


def run_jobs(
    jobs: Iterable[ScheduleJob],
    context: EngineContext,
    workers: int = 0,
    chunksize: Optional[int] = None,
) -> SweepResults:
    """Execute a job list and collect the results, in job order.

    Parameters
    ----------
    jobs:
        The jobs to run.  Their ``index`` fields must be unique -- they are
        the deterministic tie-break key for downstream aggregation.
    context:
        Shared SOCs and constraint sets the jobs reference.
    workers:
        ``0`` or ``1`` runs serially in-process; ``n > 1`` uses a pool of
        ``min(n, len(jobs))`` worker processes.
    chunksize:
        Jobs handed to a worker per dispatch; defaults to roughly four
        chunks per worker, which balances scheduling overhead against
        stragglers on heterogeneous grids.
    """
    ordered: List[ScheduleJob] = list(jobs)
    if workers < 0:
        raise EngineError(f"workers must be non-negative, got {workers}")
    if not ordered:
        return SweepResults(())
    indexes = [job.index for job in ordered]
    if len(set(indexes)) != len(indexes):
        raise EngineError("job indexes must be unique within one sweep")

    effective = min(int(workers), len(ordered))
    if effective <= 1:
        return _run_serial(ordered, context)

    max_widths = tuple({job.config.max_core_width for job in ordered})
    if chunksize is None:
        chunksize = max(1, len(ordered) // (effective * 4))
    try:
        pool = preferred_pool_context().Pool(
            processes=effective,
            initializer=_init_worker,
            initargs=(context, max_widths),
        )
    except (ImportError, OSError, PermissionError):
        # No usable multiprocessing primitives (e.g. sandboxed /dev/shm):
        # degrade to the deterministic serial path.  Only pool *creation*
        # is guarded -- a job raising inside a worker is a real error and
        # must propagate, not trigger a full serial re-run.
        return _run_serial(ordered, context)
    with pool:
        results = pool.map(_run_in_worker, ordered, chunksize=chunksize)
    return SweepResults(tuple(results))

"""High-level sweep-engine entry points used by the experiment drivers.

These helpers encode the two sweep shapes the paper's evaluation needs:

* :func:`best_schedule_grid` -- the best schedule over a
  (``percent``, ``delta``, ``insertion_slack``) heuristic grid at one TAM
  width, the engine-backed equivalent of
  :func:`repro.core.scheduler.best_schedule`.
* :func:`parallel_tam_sweep` -- ``T(W)`` / ``D(W)`` over a width range, the
  engine-backed equivalent of
  :func:`repro.core.data_volume.sweep_tam_widths`.

Both are bit-compatible with their serial counterparts for any worker
count: the grid expansion order fixes the job indexes, and aggregation
tie-breaks on those indexes.

The *scheduler mode* vocabulary of Table 1 (non-preemptive / preemptive /
power-constrained) also lives here, together with the constraint-set
derivation the paper uses (preemption budgets for the larger cores, power
budget relative to the hottest core test).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.data_volume import TamSweep, build_tam_sweep, normalize_sweep_widths
from repro.core.scheduler import SchedulerConfig
from repro.engine.grid import ParameterGrid
from repro.engine.jobs import EngineContext, ScheduleJob
from repro.engine.results import SweepResults
from repro.engine.runner import run_jobs
from repro.schedule.schedule import TestSchedule
from repro.soc.constraints import ConstraintSet
from repro.soc.soc import Soc

# Scheduler modes of the Table 1 columns.
MODE_NON_PREEMPTIVE = "non_preemptive"
MODE_PREEMPTIVE = "preemptive"
MODE_POWER_CONSTRAINED = "power_constrained"
SCHEDULER_MODES: Tuple[str, ...] = (
    MODE_NON_PREEMPTIVE,
    MODE_PREEMPTIVE,
    MODE_POWER_CONSTRAINED,
)

# Preemption limit used for the "larger cores" in the preemptive experiments.
PREEMPTION_LIMIT = 2

# Power budget = factor * max per-core test power (the paper's P_max is
# defined relative to the per-core power values; see DESIGN.md section 5).
# A factor just above 1.0 reproduces the paper's qualitative behaviour: the
# power constraint barely matters at narrow TAMs (little test concurrency)
# and increasingly dominates as the TAM gets wider.
POWER_BUDGET_FACTOR = 1.1


def preemption_limits(
    soc: Soc, limit: int = PREEMPTION_LIMIT, top_fraction: float = 0.5
) -> Dict[str, int]:
    """Per-core preemption limits: the larger half of the cores get ``limit``.

    The paper sets ``max_preemptions`` to 2 "for the larger cores"; we rank
    cores by total test data volume and give the top ``top_fraction`` of them
    the limit.
    """
    ranked = sorted(soc.cores, key=lambda core: core.total_test_bits, reverse=True)
    count = max(1, int(round(len(ranked) * top_fraction)))
    return {core.name: limit for core in ranked[:count]}


def power_budget(soc: Soc, factor: float = POWER_BUDGET_FACTOR) -> float:
    """The power constraint ``P_max`` used in the power-constrained rows."""
    return factor * soc.max_test_power()


def mode_constraint_sets(
    soc: Soc,
    preemption_limit: int = PREEMPTION_LIMIT,
    power_factor: float = POWER_BUDGET_FACTOR,
    top_fraction: float = 0.5,
) -> Dict[str, ConstraintSet]:
    """The named constraint sets behind the preemptive / power-constrained modes.

    The non-preemptive mode is the absence of constraints and has no entry.
    """
    limits = preemption_limits(soc, limit=preemption_limit, top_fraction=top_fraction)
    preemptive = ConstraintSet.for_soc(soc, max_preemptions=limits)
    return {
        MODE_PREEMPTIVE: preemptive,
        MODE_POWER_CONSTRAINED: preemptive.with_power_max(
            power_budget(soc, power_factor)
        ),
    }


def config_grid(
    percents: Sequence[float] = (1, 5, 10, 25, 40, 60, 75),
    deltas: Sequence[int] = (0, 2, 4),
    slacks: Sequence[int] = (0, 3, 6),
) -> ParameterGrid:
    """The heuristic-parameter grid the paper's protocol sweeps per schedule."""
    return ParameterGrid.of(percent=percents, delta=deltas, insertion_slack=slacks)


def expand_config_jobs(
    soc_key: str,
    width: int,
    grid: ParameterGrid,
    base_config: Optional[SchedulerConfig] = None,
    constraints_key: Optional[str] = None,
    group: Sequence[Any] = (),
    tags: Sequence[Tuple[str, Any]] = (),
    start_index: int = 0,
) -> List[ScheduleJob]:
    """One job per grid point; point values override ``base_config`` fields."""
    base = base_config or SchedulerConfig()
    jobs = []
    for index, point in grid.enumerate_points(start=start_index):
        jobs.append(
            ScheduleJob(
                index=index,
                soc=soc_key,
                width=width,
                config=replace(base, **point),
                constraints=constraints_key,
                group=tuple(group),
                tags=tuple(tags),
            )
        )
    return jobs


def best_schedule_grid(
    soc: Soc,
    total_width: int,
    constraints: Optional[ConstraintSet] = None,
    percents: Sequence[float] = (1, 5, 10, 25, 40, 60, 75),
    deltas: Sequence[int] = (0, 2, 4),
    slacks: Sequence[int] = (0, 3, 6),
    config: Optional[SchedulerConfig] = None,
    workers: int = 0,
) -> TestSchedule:
    """Best schedule over the heuristic grid; engine-backed ``best_schedule``.

    With any ``workers`` value this returns the same schedule as
    :func:`repro.core.scheduler.best_schedule` called with the same
    arguments: the first grid point (in ``percent`` outer, ``delta`` middle,
    ``slack`` inner order) achieving the minimum makespan wins.
    """
    named = {"constraints": constraints} if constraints is not None else {}
    context = EngineContext.for_soc(soc, named)
    jobs = expand_config_jobs(
        soc.name,
        total_width,
        config_grid(percents, deltas, slacks),
        base_config=config,
        constraints_key="constraints" if constraints is not None else None,
        group=(soc.name, total_width),
    )
    results = run_jobs(jobs, context, workers=workers)
    return results.best_for_group((soc.name, total_width)).schedule


def parallel_tam_sweep(
    soc: Soc,
    widths: Sequence[int],
    constraints: Optional[ConstraintSet] = None,
    config: Optional[SchedulerConfig] = None,
    workers: int = 0,
    monotone: bool = True,
    solver: str = "paper",
    solver_options: Optional[Dict[str, Any]] = None,
) -> TamSweep:
    """Schedule the SOC at every width and collect ``T``/``D``; engine-backed.

    Semantics match :func:`repro.core.data_volume.sweep_tam_widths`
    (including the monotone staircase clamp, applied in width order after
    all schedules complete) for every worker count.  ``solver`` may name
    any registered schedule-producing solver (see :mod:`repro.solvers`), so
    the Figure 9 curves can be regenerated for a baseline as easily as for
    the paper scheduler; ``solver_options`` (e.g. a trimmed grid for the
    ``best`` solver) travel with every job.
    """
    sweep, _ = parallel_tam_sweep_results(
        soc,
        widths,
        constraints=constraints,
        config=config,
        workers=workers,
        monotone=monotone,
        solver=solver,
        solver_options=solver_options,
    )
    return sweep


def parallel_tam_sweep_results(
    soc: Soc,
    widths: Sequence[int],
    constraints: Optional[ConstraintSet] = None,
    config: Optional[SchedulerConfig] = None,
    workers: int = 0,
    monotone: bool = True,
    solver: str = "paper",
    solver_options: Optional[Dict[str, Any]] = None,
) -> Tuple[TamSweep, SweepResults]:
    """Like :func:`parallel_tam_sweep`, but also return the raw job results.

    The :class:`~repro.engine.results.SweepResults` carry the per-width
    solver metadata (e.g. the winning grid point of each ``best`` sweep),
    which the reduced :class:`~repro.core.data_volume.TamSweep` cannot.
    """
    ordered = normalize_sweep_widths(widths, monotone)
    named = {"constraints": constraints} if constraints is not None else {}
    context = EngineContext.for_soc(soc, named)
    jobs = [
        ScheduleJob(
            index=index,
            soc=soc.name,
            width=width,
            config=config or SchedulerConfig(),
            constraints="constraints" if constraints is not None else None,
            solver=solver,
            options=tuple(sorted((solver_options or {}).items())),
            group=(soc.name, "tam_sweep"),
        )
        for index, width in enumerate(ordered)
    ]
    results = run_jobs(jobs, context, workers=workers)
    sweep = build_tam_sweep(
        soc.name, ordered, [result.makespan for result in results], monotone
    )
    return sweep, results


def run_grid(
    jobs: Sequence[ScheduleJob],
    context: EngineContext,
    workers: int = 0,
) -> SweepResults:
    """Thin alias of :func:`repro.engine.runner.run_jobs` for API symmetry."""
    return run_jobs(jobs, context, workers=workers)

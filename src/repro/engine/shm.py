"""Zero-copy shared-memory payload plane for the flat executor.

Dispatching a decomposed ``best`` job used to pickle each grid-run task's
whole payload -- the scheduler config, the grid point, the constraint set
and (dominant on large SOCs) the per-core preferred-width vector -- through
the pool pipe, once per task.  This module moves the immutable per-plan and
per-universe state into :mod:`multiprocessing.shared_memory` segments that
are published once, so tasks shrink to a segment *name* plus indices:

* **Plan segments** (:func:`publish_plan`) hold one decomposed grid plan's
  shared run table: the pickled header (SOC key, width, constraints,
  scheduler config, the ``(run index, grid point)`` list) followed by the
  packed ``int64`` matrix of preferred-width vectors (one row per run).
  Workers attach by name (:func:`load_plan`, memoised per process with a
  small LRU) and read a task's vector as a slice of the mapped buffer --
  no object graph ever crosses the pipe again.
* **Universe segments** (:func:`publish_universe`) hold the SOC universe
  plus every warmed wrapper-curve table
  (:data:`repro.wrapper.curve.CURVE_TABLE_FIELDS`), packed the same way.
  ``fork`` pools inherit the parent's warm caches zero-copy already, so
  the executor publishes a universe only for ``spawn``/``forkserver``
  pools, whose initializer adopts it (:func:`adopt_universe`) instead of
  unpickling per-worker ``initargs``.

Lifecycle is guarded at both ends.  The parent wraps every published
segment in a :class:`ShmSegment`, whose ``close()`` runs close + unlink
exactly once and is backed by a :class:`weakref.finalize` so abandoned
segments are still reclaimed at garbage collection or interpreter exit.
Workers unregister attached segments from the ``resource_tracker``
(attaching registers a second owner on CPython < 3.13, which would
double-unlink at exit) and cap their attach cache, releasing evicted
mappings.  The REP012 lint rule pins the other half of the contract:
every ``SharedMemory`` construction in the source tree must be reachable
from the lifecycle helpers in this module.
"""

from __future__ import annotations

import pickle
import struct
import weakref
from array import array
from collections import OrderedDict
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Tuple

if TYPE_CHECKING:  # typing only: keep this module import-light at runtime
    from repro.core.grid_sweep import GridPoint, GridRun
    from repro.core.scheduler import SchedulerConfig
    from repro.soc.constraints import ConstraintSet
    from repro.soc.soc import Soc

#: Exceptions a publisher may raise when shared memory is unavailable or a
#: payload does not pickle; callers degrade to fat (pickled) payloads.
PUBLISH_ERRORS: Tuple[type, ...] = (
    OSError,
    PermissionError,
    ValueError,
    ImportError,
    pickle.PicklingError,
)

#: Little-endian length prefix of the pickled header region.
_LEN = struct.Struct("<Q")

#: Worker-side attach cache cap: segments beyond this are the oldest plans
#: of a long session, released (mapping closed) before a new attach.
_PLAN_CACHE_LIMIT = 8


# ----------------------------------------------------------------------
# Parent-side segment ownership
# ----------------------------------------------------------------------
def _release_segment(segment: shared_memory.SharedMemory) -> None:
    """Close and unlink one segment, tolerating an already-unlinked name."""
    try:
        segment.close()
    except BufferError:  # pragma: no cover - exported view still alive
        pass
    try:
        segment.unlink()
    except FileNotFoundError:
        pass


class ShmSegment:
    """Parent-side owner of one published segment.

    ``close()`` runs close + unlink exactly once (idempotent); a
    :class:`weakref.finalize` guarantees the same cleanup when the owner
    is garbage-collected or the interpreter exits, so no segment outlives
    the process that published it.
    """

    __slots__ = ("name", "size", "_finalizer", "__weakref__")

    def __init__(self, segment: shared_memory.SharedMemory) -> None:
        self.name = segment.name
        self.size = segment.size
        self._finalizer = weakref.finalize(self, _release_segment, segment)

    @property
    def alive(self) -> bool:
        """Whether the segment is still published (close not yet run)."""
        return self._finalizer.alive

    def close(self) -> None:
        """Close and unlink the segment (safe to call more than once)."""
        self._finalizer()


def _create_segment(payload: bytes) -> shared_memory.SharedMemory:
    """Create one segment holding ``payload`` (the only creation site)."""
    segment = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
    segment.buf[: len(payload)] = payload
    return segment


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a published segment by name (worker side).

    Attaching registers the name with the ``resource_tracker`` a second
    time on CPython < 3.13, so the tracker would unlink it again (with a
    warning) when this process exits; unregister immediately -- the
    publishing parent owns the unlink.
    """
    segment = shared_memory.SharedMemory(name=name)
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
    except (ImportError, AttributeError, KeyError, ValueError, OSError):
        # Tracker shape varies by CPython version; a failed unregister
        # only means a harmless double-unlink warning at worker exit.
        pass  # pragma: no cover
    return segment


# ----------------------------------------------------------------------
# Packing: [8B header length][pickled header, zero-padded to 8B][int64 data]
# ----------------------------------------------------------------------
def _publish(header: Any, values: "array[int]") -> ShmSegment:
    blob = pickle.dumps(header, protocol=pickle.HIGHEST_PROTOCOL)
    pad = (-(_LEN.size + len(blob))) % 8  # align the int64 region
    payload = b"".join(
        (_LEN.pack(len(blob) + pad), blob, b"\0" * pad, values.tobytes())
    )
    return ShmSegment(_create_segment(payload))


def _unpack(buf: memoryview) -> Tuple[Any, memoryview]:
    """``(header, int64-aligned data view)`` of one packed segment buffer.

    The data view may extend past the published values (shared memory
    rounds sizes up to a page); readers slice by the lengths recorded in
    the header and never see the zero tail.
    """
    (header_len,) = _LEN.unpack_from(buf, 0)
    header = pickle.loads(bytes(buf[_LEN.size : _LEN.size + header_len]))
    return header, buf[_LEN.size + header_len :]


# ----------------------------------------------------------------------
# Plan segments: one decomposed grid plan's shared run table
# ----------------------------------------------------------------------
def publish_plan(
    soc_key: str,
    width: int,
    constraints: Optional["ConstraintSet"],
    config: "SchedulerConfig",
    runs: Sequence["GridRun"],
) -> ShmSegment:
    """Publish one grid plan's run table; tasks then carry only indices.

    The header pickles the per-plan invariants once (SOC key, width,
    constraints, config, the ``(run index, grid point)`` list); the data
    region is the row-major ``int64`` matrix of preferred-width vectors.
    """
    cores = len(runs[0].preferred_widths) if runs else 0
    vectors = array("q")
    table: List[Tuple[int, "GridPoint"]] = []
    for run in runs:
        if len(run.preferred_widths) != cores:
            raise ValueError("grid runs disagree on vector length")
        table.append((run.index, run.point))
        vectors.extend(run.preferred_widths)
    header = {
        "kind": "plan",
        "soc": soc_key,
        "width": int(width),
        "constraints": constraints,
        "config": config,
        "runs": table,
        "cores": cores,
    }
    return _publish(header, vectors)


class PlanPayload:
    """A worker's view of one published plan segment.

    Holds the attached segment and its mapped buffer for as long as the
    payload is cached; :meth:`release` drops the views and closes the
    mapping (the parent keeps the unlink).
    """

    __slots__ = ("soc", "width", "constraints", "config", "_points", "_rows",
                 "_cores", "_segment", "_views", "_data")

    def __init__(
        self, segment: shared_memory.SharedMemory, header: Mapping[str, Any],
        views: Tuple[memoryview, ...], data: memoryview,
    ) -> None:
        self.soc: str = header["soc"]
        self.width: int = header["width"]
        self.constraints: Optional["ConstraintSet"] = header["constraints"]
        self.config: "SchedulerConfig" = header["config"]
        self._points: Dict[int, "GridPoint"] = {
            index: point for index, point in header["runs"]
        }
        self._rows: Dict[int, int] = {
            index: row for row, (index, _) in enumerate(header["runs"])
        }
        self._cores: int = header["cores"]
        self._segment = segment
        self._views = views
        self._data = data  # int64-cast view over the vector matrix

    def run(self, run_index: int) -> Tuple["GridPoint", Tuple[int, ...]]:
        """The ``(grid point, preferred-width vector)`` of one run."""
        row = self._rows[run_index]
        start = row * self._cores
        return self._points[run_index], tuple(self._data[start : start + self._cores])

    def release(self) -> None:
        """Release the mapped views and close this process's attachment."""
        for view in (self._data, *reversed(self._views)):
            try:
                view.release()
            except BufferError:  # pragma: no cover - double release
                pass
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - stray exported view
            pass


# Worker-side attach cache.  Fork-local by design: each worker memoises the
# plan segments it has mapped; entries are pure views of parent-published
# immutable data, so divergence across workers is coverage, never content.
_PLANS: "OrderedDict[str, PlanPayload]" = OrderedDict()  # repro: fork-local
_PLAN_HITS = 0  # repro: fork-local
_PLAN_MISSES = 0  # repro: fork-local


def load_plan(name: str) -> PlanPayload:
    """The memoised :class:`PlanPayload` of one published plan segment."""
    global _PLAN_HITS, _PLAN_MISSES
    payload = _PLANS.get(name)
    if payload is not None:
        _PLAN_HITS += 1
        _PLANS.move_to_end(name)
        return payload
    _PLAN_MISSES += 1
    while len(_PLANS) >= _PLAN_CACHE_LIMIT:
        _, stale = _PLANS.popitem(last=False)
        stale.release()
    segment = _attach_segment(name)
    view = memoryview(segment.buf)
    header, data = _unpack(view)
    payload = PlanPayload(segment, header, (view, data), data.cast("q"))
    _PLANS[name] = payload
    return payload


def release_worker_segments() -> None:
    """Release every plan segment this process has attached (idempotent)."""
    while _PLANS:
        _, payload = _PLANS.popitem(last=False)
        payload.release()


def plan_cache_info() -> Tuple[int, int, int]:
    """``(hits, misses, entries)`` of this process's plan-attach cache."""
    return _PLAN_HITS, _PLAN_MISSES, len(_PLANS)


# ----------------------------------------------------------------------
# Universe segments: the SOC dict plus warmed wrapper-curve tables
# ----------------------------------------------------------------------
def publish_universe(socs: Mapping[str, "Soc"]) -> ShmSegment:
    """Publish the SOC universe and its warmed wrapper-curve tables.

    Only the cores of ``socs`` are exported (the parent's curve cache may
    also hold unrelated cores); cores whose curves were never built ship
    without a table and are computed on demand in the worker.
    """
    from repro.wrapper.curve import export_curve_tables

    universe_cores = {core for soc in socs.values() for core in soc.cores}
    entries: List[Tuple[Any, Tuple[int, ...]]] = []
    values = array("q")
    for core, fields in export_curve_tables():
        if core not in universe_cores:
            continue
        entries.append((core, tuple(len(field) for field in fields)))
        for field in fields:
            values.extend(field)
    header = {"kind": "universe", "socs": dict(socs), "curves": entries}
    return _publish(header, values)


def _seed_curves(header: Mapping[str, Any], data: memoryview) -> int:
    """Copy each exported curve table into this process's curve cache."""
    from repro.wrapper.curve import seed_curve_table

    seeded = 0
    offset = 0  # int64 units
    for core, lengths in header["curves"]:
        fields = []
        for length in lengths:
            fields.append(data[offset * 8 : (offset + length) * 8])
            offset += length
        if seed_curve_table(core, fields):
            seeded += 1
    return seeded


def adopt_universe(name: str) -> Dict[str, "Soc"]:
    """Attach a universe segment, seed local caches, and detach.

    Returns the SOC universe.  The curve tables are *copied* into the
    per-process cache (they must stay growable for wider requests), so
    the attachment is closed before returning -- the worker holds no
    mapping afterwards and the parent's unlink is never blocked.
    """
    segment = _attach_segment(name)
    try:
        view = memoryview(segment.buf)
        try:
            header, data = _unpack(view)
            try:
                _seed_curves(header, data)
                return dict(header["socs"])
            finally:
                data.release()
        finally:
            view.release()
    finally:
        segment.close()

"""Structured failure vocabulary and deterministic fault injection.

This module defines the fault-tolerance contract of the flat executor
(:mod:`repro.engine.executor`):

* :class:`FailureRecord` -- one structured journal entry per observed
  failure (a task exception, a stalled/broken pool, a failed pool
  creation), carrying the task fingerprint, the attempt number and the
  recovery action taken.  The executor accumulates them into the *fault
  journal* surfaced on :class:`~repro.engine.results.ExecutorStats`.
* :class:`RecoveryEvent` -- one step down the ordered *recovery ladder*
  ``parallel -> resurrected -> quarantined -> serial``.  A clean parallel
  run has no events; every event records a transition the run had to take
  to keep producing bit-identical results.
* :class:`FaultPlan` -- a deterministic fault-injection schedule: worker
  kills, task exceptions, task hangs and pool-creation failures keyed on
  *task fingerprints* and *attempt numbers* (never wall-clock or ambient
  randomness -- REP002-clean), so a chaos run is exactly reproducible.
  Plans load from JSON (``repro chaos --plan``) or from the
  ``REPRO_FAULT_PLAN`` environment variable (inline JSON or a file path).
* :func:`backoff_delay` -- the bounded deterministic exponential backoff
  used between task retries.  The per-task spread is derived from a CRC32
  of the task fingerprint, not from a random source, so two runs of the
  same plan sleep identically.
* :class:`CancelToken` / :func:`cancel_scope` -- cooperative mid-run
  cancellation (PR 10).  The scheduling service arms a token per request
  (client disconnects, per-request deadlines) and installs it as the
  calling thread's ambient *cancel scope*; the scheduler's event loop and
  the executor's dispatch loop poll the ambient token and abandon the run
  with :class:`CancelledSolve` -- the same checkpoint cadence as the
  PR 9 incumbent-board abort path, so a cancelled grid fan-out drops its
  in-flight worker tasks instead of finishing them.  Deadlines are
  measured with ``time.perf_counter`` (monotonic; REP002-clean).

Everything here is dependency-free (stdlib only) and import-cycle-free:
``repro.core.grid_sweep`` and ``repro.engine.results`` both import it.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

#: Environment variable naming a fault plan: inline JSON or a file path.
ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"

#: The ordered recovery ladder.  ``parallel`` is the implicit baseline
#: stage of every pooled run; the executor appends an event each time it
#: steps *down* the ladder to keep the run alive.
STAGE_PARALLEL = "parallel"
STAGE_RESURRECTED = "resurrected"
STAGE_QUARANTINED = "quarantined"
STAGE_SERIAL = "serial"
RECOVERY_LADDER: Tuple[str, ...] = (
    STAGE_PARALLEL,
    STAGE_RESURRECTED,
    STAGE_QUARANTINED,
    STAGE_SERIAL,
)

#: Fault kinds a plan may inject.
FAULT_KILL = "kill"
FAULT_EXCEPTION = "exception"
FAULT_HANG = "hang"
FAULT_POOL = "pool"
FAULT_KINDS: Tuple[str, ...] = (FAULT_KILL, FAULT_EXCEPTION, FAULT_HANG, FAULT_POOL)

#: Exit code of a worker killed by a ``kill`` action (aids post-mortems).
KILL_EXIT_CODE = 86


class FaultPlanError(ValueError):
    """Raised when a fault plan cannot be parsed or is ill-formed."""


class InjectedFault(RuntimeError):
    """The exception an ``exception`` fault action raises inside a worker.

    Deliberately a plain single-argument ``RuntimeError`` subclass so it
    pickles cleanly across the result pipe.
    """


# ----------------------------------------------------------------------
# Failure journal entries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FailureRecord:
    """One observed failure and the recovery action taken.

    ``kind`` classifies what failed (``task-error``, ``pool-stall``,
    ``pool-death``, ``pool-creation``, ``board-creation``, ``fatal``);
    ``task`` is the fingerprint of the implicated task (empty for
    pool-level failures); ``attempt`` the 1-based attempt that failed
    (0 when not task-scoped); ``error`` the formatted exception; and
    ``action`` what the executor did about it (``retry``, ``resurrect``,
    ``quarantine``, ``serial``, ``continue``, ``raise``).
    """

    kind: str
    task: str = ""
    attempt: int = 0
    error: str = ""
    action: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-friendly form (the fault-journal wire shape)."""
        return {
            "kind": self.kind,
            "task": self.task,
            "attempt": self.attempt,
            "error": self.error,
            "action": self.action,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FailureRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            kind=str(data.get("kind", "")),
            task=str(data.get("task", "")),
            attempt=int(data.get("attempt", 0)),
            error=str(data.get("error", "")),
            action=str(data.get("action", "")),
        )

    def render(self) -> str:
        """One-line human-readable form for logs and CLI output."""
        scope = f" task={self.task} attempt={self.attempt}" if self.task else ""
        detail = f" ({self.error})" if self.error else ""
        return f"{self.kind}{scope} -> {self.action}{detail}"


def format_error(error: BaseException) -> str:
    """The canonical ``Type: message`` rendering used in failure records."""
    message = str(error)
    name = type(error).__name__
    return f"{name}: {message}" if message else name


# ----------------------------------------------------------------------
# Recovery ladder events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RecoveryEvent:
    """One downward step on the recovery ladder.

    ``stage`` is one of :data:`RECOVERY_LADDER` (never ``parallel`` --
    the baseline is implicit); ``reason`` a short slug for what forced
    the step (``stalled``, ``pool-death``, ``pool-creation``); ``task``
    the fingerprint of the implicated task when the step is task-scoped
    (quarantine), empty otherwise.
    """

    stage: str
    reason: str
    task: str = ""

    def encode(self) -> str:
        """Compact ``stage:reason[@task]`` form for metadata and CSV."""
        suffix = f"@{self.task}" if self.task else ""
        return f"{self.stage}:{self.reason}{suffix}"

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-friendly form."""
        return {"stage": self.stage, "reason": self.reason, "task": self.task}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RecoveryEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        return cls(
            stage=str(data.get("stage", "")),
            reason=str(data.get("reason", "")),
            task=str(data.get("task", "")),
        )


def encode_recovery_events(events: Sequence[RecoveryEvent]) -> str:
    """The ``>``-joined compact form surfaced in result metadata and CSV."""
    return ">".join(event.encode() for event in events)


def ladder_stage(events: Sequence[RecoveryEvent]) -> str:
    """The deepest ladder stage a run reached (``parallel`` when clean)."""
    deepest = 0
    for event in events:
        if event.stage in RECOVERY_LADDER:
            deepest = max(deepest, RECOVERY_LADDER.index(event.stage))
    return RECOVERY_LADDER[deepest]


# ----------------------------------------------------------------------
# Fault plans (deterministic injection schedules)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultAction:
    """One injection rule of a :class:`FaultPlan`.

    Task-scoped kinds (``kill``/``exception``/``hang``) fire when the
    task fingerprint contains ``match`` (empty matches every task) *and*
    the 1-based attempt number is listed in ``attempts`` -- so a fault
    can be transient (fire on attempt 1 only, succeed on retry) or
    persistent (fire on every listed attempt).  The ``pool`` kind is not
    task-scoped: it fails the next ``count`` pool creations.
    """

    kind: str
    match: str = ""
    attempts: Tuple[int, ...] = (1,)
    count: int = 1
    seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        attempts = tuple(int(a) for a in self.attempts)
        if any(a < 1 for a in attempts):
            raise FaultPlanError("fault attempts are 1-based; got " + repr(attempts))
        object.__setattr__(self, "attempts", attempts)
        if self.count < 1:
            raise FaultPlanError(f"fault count must be positive, got {self.count}")
        if self.seconds <= 0:
            raise FaultPlanError(f"hang seconds must be positive, got {self.seconds}")

    def applies_to(self, fingerprint: str, attempt: int) -> bool:
        """Whether this (task-scoped) action fires for a task attempt."""
        if self.kind == FAULT_POOL:
            return False
        return self.match in fingerprint and attempt in self.attempts

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-friendly form (the ``--plan`` wire shape)."""
        data: Dict[str, Any] = {"kind": self.kind}
        if self.kind == FAULT_POOL:
            data["count"] = self.count
            return data
        data["match"] = self.match
        data["attempts"] = list(self.attempts)
        if self.kind == FAULT_HANG:
            data["seconds"] = self.seconds
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultAction":
        """Parse one action from its JSON object form."""
        if not isinstance(data, Mapping):
            raise FaultPlanError(f"a fault action must be a JSON object, got {data!r}")
        known = {"kind", "match", "attempts", "count", "seconds"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise FaultPlanError(f"unknown fault action field(s): {', '.join(unknown)}")
        attempts = data.get("attempts", (1,))
        if isinstance(attempts, (int, float)):
            attempts = (int(attempts),)
        return cls(
            kind=str(data.get("kind", "")),
            match=str(data.get("match", "")),
            attempts=tuple(int(a) for a in attempts),
            count=int(data.get("count", 1)),
            seconds=float(data.get("seconds", 3600.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault-injection schedule.

    The plan ships to every pool worker at initializer time; workers
    consult it (via :func:`apply_task_fault`) immediately before running
    each task.  Injection is keyed purely on the task fingerprint and the
    attempt number, so a plan replays identically for any worker count --
    which is exactly what lets the chaos tests assert bit-identical
    schedules under injected faults.
    """

    actions: Tuple[FaultAction, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "actions", tuple(self.actions))

    def __bool__(self) -> bool:
        return bool(self.actions)

    def task_action(self, fingerprint: str, attempt: int) -> Optional[FaultAction]:
        """The first task-scoped action firing for this task attempt."""
        for action in self.actions:
            if action.applies_to(fingerprint, attempt):
                return action
        return None

    def pool_failure_budget(self) -> int:
        """How many pool creations this plan wants to fail, in total."""
        return sum(a.count for a in self.actions if a.kind == FAULT_POOL)

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-friendly form."""
        return {"faults": [action.to_dict() for action in self.actions]}

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise the plan to its JSON wire form."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Parse a plan from its ``{"faults": [...]}`` object form."""
        if not isinstance(data, Mapping):
            raise FaultPlanError(f"a fault plan must be a JSON object, got {data!r}")
        unknown = sorted(set(data) - {"faults"})
        if unknown:
            raise FaultPlanError(f"unknown fault plan field(s): {', '.join(unknown)}")
        faults = data.get("faults", ())
        if not isinstance(faults, Sequence) or isinstance(faults, (str, bytes)):
            raise FaultPlanError("'faults' must be a JSON array of actions")
        return cls(actions=tuple(FaultAction.from_dict(entry) for entry in faults))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from JSON text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise FaultPlanError(f"fault plan is not valid JSON: {error}") from error
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: "os.PathLike[str]") -> "FaultPlan":
        """Load a plan from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> Optional["FaultPlan"]:
        """The plan named by ``REPRO_FAULT_PLAN``, or ``None`` when unset.

        The value may be inline JSON (starts with ``{``) or a file path.
        An empty value means no plan.
        """
        value = (environ if environ is not None else os.environ).get(ENV_FAULT_PLAN, "")
        value = value.strip()
        if not value:
            return None
        if value.startswith("{"):
            return cls.from_json(value)
        path = Path(value)
        if not path.exists():
            raise FaultPlanError(
                f"{ENV_FAULT_PLAN}={value!r} is neither inline JSON nor an existing file"
            )
        return cls.from_file(path)


def apply_task_fault(plan: FaultPlan, fingerprint: str, attempt: int) -> None:
    """Worker-side injection hook, called immediately before a task runs.

    ``kill`` hard-exits the worker process (the parent's watchdog detects
    the resulting stall and resurrects the pool); ``hang`` sleeps for the
    action's ``seconds`` (the watchdog deadline fires first in any chaos
    run, and an over-generous deadline merely makes the task slow -- the
    result stays correct either way); ``exception`` raises
    :class:`InjectedFault` (absorbed by the executor's bounded retry).
    """
    action = plan.task_action(fingerprint, attempt)
    if action is None:
        return
    if action.kind == FAULT_KILL:
        os._exit(KILL_EXIT_CODE)
    if action.kind == FAULT_HANG:
        time.sleep(action.seconds)
        return
    raise InjectedFault(
        f"injected fault for task {fingerprint} (attempt {attempt})"
    )


# ----------------------------------------------------------------------
# Deterministic retry backoff
# ----------------------------------------------------------------------
def fingerprint_spread(fingerprint: str) -> float:
    """A stable per-task factor in ``[1.0, 1.16)`` derived from CRC32.

    Replaces the wall-clock/random jitter a conventional backoff would
    use: tasks sharing a pool desynchronise their retries, but the delay
    for a given task is a pure function of its fingerprint (REP002-clean).
    """
    return 1.0 + (zlib.crc32(fingerprint.encode("utf-8")) % 16) / 100.0


def backoff_delay(fingerprint: str, attempt: int, base: float) -> float:
    """Seconds to wait before re-dispatching a failed task.

    Exponential in the attempt number (``base * 2**(attempt-1)``), scaled
    by the task's :func:`fingerprint_spread`.  ``base <= 0`` disables
    backoff entirely (used by tests that only care about identity).
    """
    if base <= 0:
        return 0.0
    return base * (2.0 ** max(0, attempt - 1)) * fingerprint_spread(fingerprint)


# ----------------------------------------------------------------------
# Cooperative cancellation (service layer, PR 10)
# ----------------------------------------------------------------------
#: Reason slug recorded when a token's deadline fires (as opposed to an
#: explicit ``cancel()`` call).
REASON_DEADLINE = "deadline-exceeded"


class CancelledSolve(RuntimeError):
    """A solve was abandoned at a cancellation checkpoint.

    Deliberately *not* a :class:`SchedulerError` subclass: solver shims
    wrap scheduler errors into ``SolverError``, but cancellation must
    propagate raw to whoever armed the token (the service supervisor).
    ``reason`` is a short slug (``deadline-exceeded``, ``disconnect``,
    ``client-cancel``, ...) suitable for journal records.
    """

    def __init__(self, reason: str = "cancelled") -> None:
        super().__init__(reason)
        self.reason = reason


class CancelToken:
    """A thread-safe cooperative cancellation handle with an optional deadline.

    The deadline is an *absolute* ``time.perf_counter`` timestamp
    (monotonic -- REP002-clean); build one from a relative budget with
    :meth:`after`.  Checkpoints call :meth:`raise_if_cancelled`, which is
    one ``Event.is_set`` plus (when a deadline is armed) one
    ``perf_counter`` read -- cheap enough for the scheduler's per-event
    loop.
    """

    __slots__ = ("_event", "_reason", "_deadline")

    def __init__(self, deadline: Optional[float] = None) -> None:
        self._event = threading.Event()
        self._reason = ""
        self._deadline = deadline

    @classmethod
    def after(cls, seconds: Optional[float]) -> "CancelToken":
        """A token whose deadline is ``seconds`` from now (``None`` = never)."""
        if seconds is None:
            return cls()
        return cls(deadline=time.perf_counter() + float(seconds))

    @property
    def deadline(self) -> Optional[float]:
        """The absolute ``perf_counter`` deadline, or ``None``."""
        return self._deadline

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (negative when past), or ``None``."""
        if self._deadline is None:
            return None
        return self._deadline - time.perf_counter()

    def expired(self) -> bool:
        """Whether the deadline (if any) has passed."""
        return self._deadline is not None and time.perf_counter() >= self._deadline

    def cancel(self, reason: str = "cancelled") -> None:
        """Fire the token.  The first reason wins; later calls are no-ops."""
        if not self._event.is_set():
            self._reason = reason or "cancelled"
            self._event.set()

    def cancelled(self) -> bool:
        """Whether the token has fired or its deadline has passed."""
        return self._event.is_set() or self.expired()

    def reason(self) -> str:
        """The cancellation reason slug (empty while the token is live)."""
        if self._event.is_set():
            return self._reason or "cancelled"
        if self.expired():
            return REASON_DEADLINE
        return ""

    def raise_if_cancelled(self) -> None:
        """Checkpoint: raise :class:`CancelledSolve` once the token fires."""
        if self._event.is_set():
            raise CancelledSolve(self._reason or "cancelled")
        if self.expired():
            raise CancelledSolve(REASON_DEADLINE)


#: Per-thread ambient cancel scope.  ``threading.local`` is empty in a
#: freshly forked worker's main thread, so pool workers never inherit a
#: parent-side token.  # repro: fork-local
_CANCEL_SCOPE = threading.local()


def active_cancel_token() -> Optional[CancelToken]:
    """The calling thread's ambient token, or ``None`` outside a scope."""
    token = getattr(_CANCEL_SCOPE, "token", None)
    return token if isinstance(token, CancelToken) else None


@contextlib.contextmanager
def cancel_scope(token: CancelToken) -> Iterator[CancelToken]:
    """Install ``token`` as the calling thread's ambient cancel scope.

    Scopes nest: the previous token (if any) is restored on exit even when
    the body raises.  The scheduler's event loop and the executor's reply
    loop consult :func:`active_cancel_token` at their checkpoints, so any
    solve dispatched inside the scope -- serial or pooled -- aborts
    promptly once the token fires.
    """
    previous = getattr(_CANCEL_SCOPE, "token", None)
    _CANCEL_SCOPE.token = token
    try:
        yield token
    finally:
        _CANCEL_SCOPE.token = previous


def check_cancelled() -> None:
    """Raise :class:`CancelledSolve` if the ambient token (if any) fired."""
    token = active_cancel_token()
    if token is not None:
        token.raise_if_cancelled()


def journal_to_json(
    failures: Iterable[FailureRecord],
    events: Iterable[RecoveryEvent],
    extra: Optional[Mapping[str, Any]] = None,
    indent: int = 2,
) -> str:
    """Serialise a fault journal (records + ladder) for artifact upload."""
    payload: Dict[str, Any] = dict(extra or {})
    event_list = list(events)
    payload["recovery_events"] = [event.to_dict() for event in event_list]
    payload["recovery_stage"] = ladder_stage(event_list)
    payload["failures"] = [record.to_dict() for record in failures]
    return json.dumps(payload, indent=indent)


# Re-exported convenience: the field name modules test against.
__all__ = [
    "ENV_FAULT_PLAN",
    "FAULT_EXCEPTION",
    "FAULT_HANG",
    "FAULT_KILL",
    "FAULT_KINDS",
    "FAULT_POOL",
    "CancelToken",
    "CancelledSolve",
    "FailureRecord",
    "FaultAction",
    "FaultPlan",
    "FaultPlanError",
    "InjectedFault",
    "KILL_EXIT_CODE",
    "REASON_DEADLINE",
    "RECOVERY_LADDER",
    "RecoveryEvent",
    "STAGE_PARALLEL",
    "STAGE_QUARANTINED",
    "STAGE_RESURRECTED",
    "STAGE_SERIAL",
    "active_cancel_token",
    "apply_task_fault",
    "backoff_delay",
    "cancel_scope",
    "check_cancelled",
    "encode_recovery_events",
    "fingerprint_spread",
    "format_error",
    "journal_to_json",
    "ladder_stage",
]

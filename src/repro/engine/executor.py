"""Flattened shared-pool executor: one persistent work queue for every layer.

Before this module existed the repository had *two* pool layers that could
not compose: the sweep engine pooled over whole :class:`ScheduleJob`\\ s, and
the ``best`` solver's grid sweep pooled over its deduplicated scheduler
runs.  A ``best`` job executing inside a sweep worker hit multiprocessing's
daemonic-pool restriction and silently fell back to serial grid runs, so
the paper's most expensive experiments (Tables 1/2, Figure 9 -- all sweeps
of best-over-grid solves) never used more than one process per grid point.

:class:`FlatExecutor` replaces both layers with a single flat task queue:

* **Decomposition.**  :meth:`FlatExecutor.run_jobs` breaks every job into
  scheduler-run *tasks*.  A ``best`` job explodes into its deduplicated
  grid runs (reusing :func:`repro.core.grid_sweep.dedupe_grid` and the
  estimate-first ordering), any other solver stays one task.  Parallelism
  granularity is the individual scheduler run, so stragglers shrink and
  nested pools disappear -- workers never need a pool of their own.
* **Dispatch.**  Tasks flow through ``imap_unordered`` behind a sliding
  backpressure window, and results are reassembled deterministically by
  ``(job index, run key)``.  Cross-task incumbent makespans for the same
  ``best`` job feed later tasks of that job two ways: injected into the
  task at yield time, and (on fork pools) published on a shared lock-free
  *incumbent board* that workers re-read when a task actually starts, so
  pruning stays tight even for tasks dispatched early in large chunks.
  Incumbents only ever tighten monotonically towards the final winner --
  a stale (looser) limit can never abort the winner -- so the selected
  schedule, winner grid point and statistics are bit-identical for every
  worker count.
* **Persistence.**  The pool outlives one call: it is created lazily,
  keyed on the *SOC universe* of the :class:`~repro.engine.jobs.EngineContext`
  (constraint sets are small and travel inside tasks, so a Table 1 sweep,
  a Table 2 sweep and a direct ``best`` solve over the same SOC all share
  one pool) plus the worker count and warmed cache pairs, and reused by
  subsequent ``run_jobs`` / ``Session.solve`` calls, keeping the workers'
  warm wrapper-curve and rectangle caches.  A SOC-universe change
  refreshes the pool (cheap under ``fork``: the parent's caches -- warmed
  *before* the fork -- are inherited); :meth:`FlatExecutor.close` tears it
  down explicitly and an ``atexit`` hook closes the process-wide default
  executor.

When no pool can be created at all (sandboxes without semaphores,
daemonic workers) the executor degrades to the deterministic serial path
-- *observably*: a :class:`RuntimeWarning` is emitted and the returned
:class:`~repro.engine.results.SweepResults` carry
``degraded_to_serial=True`` in their :class:`~repro.engine.results.ExecutorStats`.
"""

from __future__ import annotations

import atexit
import ctypes
import multiprocessing
import threading
import time
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.core.data_volume import tester_data_volume
from repro.core.grid_sweep import (
    DEFAULT_DELTAS,
    DEFAULT_PERCENTS,
    DEFAULT_SLACKS,
    GridPoint,
    GridRun,
    GridSweepOutcome,
    _execute_run,
    dedupe_grid,
    order_runs_by_estimate,
    preferred_pool_context,
)
from repro.core.lower_bounds import lower_bound
from repro.core.scheduler import SchedulerConfig
from repro.engine.jobs import EngineContext, EngineError, JobResult, ScheduleJob
from repro.engine.results import ExecutorStats, SweepResults
from repro.schedule.schedule import TestSchedule
from repro.soc.constraints import ConstraintSet
from repro.soc.soc import Soc
from repro.solvers.registry import normalize_solver_name
from repro.solvers.request import ScheduleRequest
from repro.solvers.session import get_default_session

#: Option names the ``best`` solver understands; a best job carrying any
#: other option is left whole so the solver raises its canonical error.
_BEST_OPTION_NAMES = frozenset({"percents", "deltas", "slacks", "workers"})

#: Exceptions that mean "no pool can be created here" (sandboxes without
#: working semaphores, platforms without fork/spawn, daemonic workers).
_POOL_CREATION_ERRORS = (ImportError, OSError, PermissionError, AssertionError)

#: Slots on the shared incumbent board (one per concurrently-dispatched
#: grid plan; plans beyond the board fall back to dispatch-time limits).
_BOARD_SLOTS = 1024


# ----------------------------------------------------------------------
# Per-job execution and cache warming (shared by serial path and workers)
# ----------------------------------------------------------------------
def execute_job(job: ScheduleJob, context: EngineContext) -> JobResult:
    """Run one whole job to completion in the current process.

    The job is dispatched through the process-wide solver session, so its
    Pareto rectangle sets come from (and warm) the shared cache.
    """
    soc, constraints = context.resolve(job)
    return _solve_job(job, soc, constraints)


def _solve_job(
    job: ScheduleJob,
    soc: Soc,
    constraints: Optional[ConstraintSet],
    suppress_fanout: bool = False,
) -> JobResult:
    """``execute_job`` with the context references already resolved.

    ``suppress_fanout`` is set when the job runs *inside* a pool worker:
    the flat pool already is the parallelism, so a solver-level ``workers``
    option is forced serial.  Without this, a ``best`` job dispatched
    whole would attempt a nested pool in a daemonic worker and stamp its
    (environment-dependent) ``degraded_to_serial`` marker into result
    metadata, breaking bit-identity with the serial reference.
    """
    options = job.solver_options()
    if suppress_fanout and options.get("workers"):
        options["workers"] = 0
    result = get_default_session().solve(
        ScheduleRequest(
            soc=soc,
            total_width=job.width,
            solver=job.solver,
            config=job.config,
            constraints=constraints,
            options=options,
        )
    )
    if result.schedule is None:
        raise EngineError(
            f"solver {job.solver!r} produces no schedule and cannot run as an "
            "engine job"
        )
    return JobResult(
        job=job,
        makespan=result.makespan,
        data_volume=result.data_volume,
        schedule=result.schedule,
        metadata=tuple(sorted(result.metadata.items())),
        wall_time=result.wall_time,
        worker=multiprocessing.current_process().name,
    )


def prime_context_caches(
    context: EngineContext,
    pairs: Iterable[Union[Tuple[str, int], int]],
) -> int:
    """Warm the Pareto caches for exactly the referenced (SOC, width) pairs.

    ``pairs`` holds ``(soc_key, max_core_width)`` tuples -- only those
    combinations are warmed, so a multi-SOC context does not pay for the
    full SOC x width cross-product when the job list references a subset.
    Bare ``int`` widths are accepted for backward compatibility and warm
    that width for every SOC in the context.

    Both the per-process testing-time curve memo and the default solver
    session's rectangle cache are primed, so every subsequent solve of a
    referenced combination skips wrapper design entirely.  Returns the
    number of per-core curves now cached.
    """
    resolved: Set[Tuple[str, int]] = set()
    for item in pairs:
        if isinstance(item, tuple):
            key, width = item
            resolved.add((key, int(width)))
        else:  # legacy form: one width for every SOC in the context
            resolved.update((key, int(item)) for key in context.socs)
    return _prime_soc_pairs(dict(context.socs), resolved)


def _prime_soc_pairs(
    socs: Dict[str, Soc], pairs: Iterable[Tuple[str, int]]
) -> int:
    """Warm the curve memo and session rectangle cache for exact pairs."""
    from repro.wrapper.pareto import prime_pareto_cache

    session = get_default_session()
    primed = 0
    for key, width in sorted(set(pairs)):
        soc = socs[key]
        primed += prime_pareto_cache(soc.cores, int(width))
        session.rectangle_sets(soc, int(width))
    return primed


# ----------------------------------------------------------------------
# Worker-side task execution
# ----------------------------------------------------------------------
# SOC universe installed in each pool worker by the initializer (fork
# workers inherit the parent's module state; spawn workers receive it via
# initargs).  Tasks reference SOCs by key -- the one large object ships
# once per worker -- while the (small) constraint sets travel inside each
# task, so the pool does not have to be rebuilt when only the constraint
# vocabulary of a job list changes.
_WORKER_SOCS: Optional[Dict[str, Soc]] = None

# The shared incumbent board: a lock-free int64 array (fork pools only).
# The parent writes each grid plan's tightening incumbent makespan into the
# plan's slot; workers read it when a task starts, so pruning limits stay
# tight even when tasks were dispatched (chunked) long before they run.
# Writes are monotone decreasing towards the final winner, so a torn or
# stale read can only yield a *looser* limit -- never an unsound one.
_WORKER_BOARD: Optional[Any] = None  # repro: fork-local


def _init_worker(
    socs: Dict[str, Soc],
    pairs: Sequence[Tuple[str, int]],
    board: Optional[Any] = None,
) -> None:
    """Pool initializer: install the SOC universe, warm the caches.

    Under ``fork`` the priming is a cache hit (the parent warmed the same
    pairs just before creating the pool); under ``spawn`` it does the real
    work once per worker.
    """
    global _WORKER_SOCS, _WORKER_BOARD
    _WORKER_SOCS = dict(socs)
    _WORKER_BOARD = board
    _prime_soc_pairs(_WORKER_SOCS, pairs)


@dataclass(frozen=True)
class _JobTask:
    """One whole job, executed via the worker's solver session.

    The constraint set is resolved in the parent and travels with the
    task (it is small); the SOC stays a key into the worker's universe.
    """

    job_index: int
    job: ScheduleJob
    constraints: Optional[ConstraintSet]


@dataclass(frozen=True)
class _GridTask:
    """One deduplicated scheduler run of a decomposed ``best`` job.

    ``limit`` is the incumbent makespan of the owning job at dispatch time
    (monotone-tightening only; ``None`` until the job's first result).
    ``slot`` indexes the shared incumbent board for a fresher limit at run
    time (``-1`` when no board is available).
    """

    job_index: int
    run_index: int
    soc: str
    width: int
    constraints: Optional[ConstraintSet]
    config: SchedulerConfig
    point: GridPoint
    vector: Tuple[int, ...]
    limit: Optional[int]
    slot: int = -1


#: What a worker sends back per task, keyed for deterministic reassembly:
#: ``(job_index, run_index, payload, wall_seconds)``.  ``run_index`` is
#: ``None`` for whole-job tasks (payload: the JobResult); for grid tasks
#: the payload is ``None`` (pruned), a bare makespan (completed but not a
#: strict improvement on the dispatch limit -- the schedule stays in the
#: worker to save IPC), or a ``(makespan, schedule)`` pair.
_TaskReply = Tuple[int, Optional[int], Any, float]


def _execute_task(task: Union[_JobTask, _GridTask]) -> _TaskReply:
    started = time.perf_counter()
    assert _WORKER_SOCS is not None, "worker used before initialization"
    if isinstance(task, _JobTask):
        soc = _WORKER_SOCS[task.job.soc]
        result = _solve_job(task.job, soc, task.constraints, suppress_fanout=True)
        return (task.job_index, None, result, time.perf_counter() - started)
    soc = _WORKER_SOCS[task.soc]
    constraints = task.constraints
    limit = task.limit
    if task.slot >= 0 and _WORKER_BOARD is not None:
        shared = _WORKER_BOARD[task.slot]
        if shared and (limit is None or shared < limit):
            limit = int(shared)
    sets = get_default_session().rectangle_sets(soc, task.config.max_core_width)
    schedule = _execute_run(
        soc,
        task.width,
        constraints or ConstraintSet.unconstrained(),
        task.config,
        sets,
        task.point,
        task.vector,
        limit,
    )
    wall = time.perf_counter() - started
    if schedule is None:  # pruned by the incumbent limit
        return (task.job_index, task.run_index, None, wall)
    makespan = schedule.makespan
    if task.slot >= 0 and _WORKER_BOARD is not None:
        # Publish the completed makespan so sibling tasks of the same job
        # prune against it without waiting for the parent's round-trip.
        # Any completed makespan bounds the job's final best from above,
        # so the (unlocked) read-compare-write race is benign: a lost
        # update can only leave a looser -- never an unsound -- limit.
        current = _WORKER_BOARD[task.slot]
        if current == 0 or makespan < current:
            _WORKER_BOARD[task.slot] = makespan
    if limit is not None and makespan >= limit:
        # Completed but no strict improvement on the incumbent known at
        # dispatch: the makespan alone decides the winner, so the (large)
        # schedule stays out of the result pipe.  In the rare case this
        # run still wins on the index tie-break, the parent deterministically
        # recomputes its schedule once, limit-free.
        return (task.job_index, task.run_index, makespan, wall)
    return (task.job_index, task.run_index, (makespan, schedule), wall)


# ----------------------------------------------------------------------
# Parent-side plans (one per job)
# ----------------------------------------------------------------------
class _JobPlan:
    """A job executed whole: exactly one task, result passed through."""

    __slots__ = ("job", "constraints", "result")

    def __init__(
        self, job: ScheduleJob, constraints: Optional[ConstraintSet]
    ) -> None:
        self.job = job
        self.constraints = constraints
        self.result: Optional[JobResult] = None

    @property
    def task_count(self) -> int:
        return 1

    def absorb(self, run_index: Optional[int], payload: Any, wall: float) -> None:
        self.result = payload

    def finish(self, session: Any) -> JobResult:
        assert self.result is not None, "job task produced no result"
        return self.result


class _GridPlan:
    """Shared best-over-grid state for one decomposed ``best`` job.

    Tracks the incumbent ``(makespan, run index)`` as grid-task results
    arrive (in any order) and keeps the schedule of the best strict
    improvement seen.  The winner selection rule -- minimal
    ``(makespan, run index)`` -- is exactly the serial sweep's, so the
    outcome is independent of completion order.
    """

    __slots__ = (
        "job",
        "soc",
        "soc_key",
        "width",
        "constraints",
        "config",
        "runs",
        "by_index",
        "grid_points",
        "bound",
        "best",
        "best_schedule",
        "wall",
        "dispatched",
        "slot",
    )

    def __init__(
        self,
        job: Optional[ScheduleJob],
        soc: Soc,
        soc_key: str,
        width: int,
        constraints: Optional[ConstraintSet],
        config: SchedulerConfig,
        runs: Sequence[GridRun],
        grid_points: int,
        bound: int,
    ) -> None:
        self.job = job
        self.soc = soc
        self.soc_key = soc_key
        self.width = width
        self.constraints = constraints
        self.config = config
        self.runs = tuple(runs)  # estimate-ordered
        self.by_index = {run.index: run for run in self.runs}
        self.grid_points = grid_points
        self.bound = bound
        self.best: Optional[Tuple[int, int]] = None  # (makespan, run index)
        self.best_schedule: Optional[TestSchedule] = None
        self.wall = 0.0
        self.dispatched = 0
        self.slot = -1  # shared incumbent-board slot, assigned at dispatch

    @property
    def task_count(self) -> int:
        return len(self.runs)

    # -- dispatch-side -------------------------------------------------
    def limit(self) -> Optional[int]:
        return self.best[0] if self.best is not None else None

    def skippable(self, run: GridRun) -> bool:
        # Once the incumbent meets the lower bound, only an earlier grid
        # point could still displace it (by tying the makespan with a
        # smaller index); everything else is settled.
        return (
            self.best is not None
            and self.best[0] <= self.bound
            and run.index > self.best[1]
        )

    def make_task(self, job_index: int, run: GridRun) -> _GridTask:
        self.dispatched += 1
        return _GridTask(
            job_index=job_index,
            run_index=run.index,
            soc=self.soc_key,
            width=self.width,
            constraints=self.constraints,
            config=self.config,
            point=run.point,
            vector=run.preferred_widths,
            limit=self.limit(),
            slot=self.slot,
        )

    # -- result-side ---------------------------------------------------
    def absorb(self, run_index: Optional[int], payload: Any, wall: float) -> None:
        self.wall += wall
        if payload is None:  # pruned by the incumbent
            return
        if isinstance(payload, tuple):
            makespan, schedule = payload
        else:
            makespan, schedule = payload, None
        key = (makespan, run_index)
        if self.best is None or key < self.best:
            self.best = key
            self.best_schedule = schedule

    def winner(
        self, rectangle_sets: Dict[str, Any]
    ) -> Tuple[int, int, GridPoint, TestSchedule]:
        """The final ``(makespan, run index, point, schedule)`` of the sweep.

        The first dispatched task runs limit-free and always completes, so
        ``best`` is set by the time dispatch ends.  When the winner's
        schedule stayed in its worker (it tied the incumbent and won only
        on the index tie-break), one deterministic limit-free rerun
        recomputes it here.
        """
        assert self.best is not None, "grid sweep produced no completed run"
        makespan, index = self.best
        run = self.by_index[index]
        schedule = self.best_schedule
        if schedule is None:
            schedule = _execute_run(
                self.soc,
                self.width,
                self.constraints or ConstraintSet.unconstrained(),
                self.config,
                rectangle_sets,
                run.point,
                run.preferred_widths,
                None,
            )
            assert schedule is not None and schedule.makespan == makespan
        return makespan, index, run.point, schedule

    def finish(self, session: Any) -> JobResult:
        """Assemble the JobResult exactly as the undecomposed path would."""
        assert self.job is not None
        soc = self.soc
        constraints = self.constraints
        sets = session.rectangle_sets(soc, self.config.max_core_width)
        makespan, _, point, schedule = self.winner(sets)
        outcome = GridSweepOutcome(
            schedule=schedule,
            winner=point,
            makespan=makespan,
            grid_points=self.grid_points,
            unique_runs=len(self.runs),
            lower_bound=self.bound,
            early_exit=makespan <= self.bound,
        )
        # Parity with Session.solve: the best solver supports constraints,
        # so its schedules are validated against them.
        schedule.validate(soc, constraints=constraints)
        return JobResult(
            job=self.job,
            makespan=makespan,
            data_volume=tester_data_volume(schedule),
            schedule=schedule,
            metadata=tuple(sorted(outcome.metadata().items())),
            wall_time=self.wall,
            worker="flat-pool",
        )


_Plan = Union[_JobPlan, _GridPlan]


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class FlatExecutor:
    """A persistent process pool fed by one flat scheduler-run task queue.

    One executor owns (at most) one pool.  The pool is created lazily on
    the first parallel dispatch, keyed on the *SOC universe* (the context's
    key -> SOC mapping -- constraint sets travel inside tasks, so Table 1
    and Table 2 sweeps over the same SOC share one pool), the process
    count and the set of warmed ``(SOC, max width)`` cache pairs; it is
    reused verbatim while those match and refreshed (close + recreate)
    when they change.  ``close()`` tears the pool down; the process-wide
    default executor (:func:`get_default_executor`) is closed at exit.
    """

    def __init__(self, window_factor: int = 4) -> None:
        if window_factor < 1:
            raise EngineError("window_factor must be positive")
        self._window_factor = int(window_factor)
        self._pool: Optional[Any] = None
        self._board: Optional[Any] = None
        self._socs: Optional[Dict[str, Soc]] = None
        self._processes = 0
        self._pairs: Set[Tuple[str, int]] = set()

    # -- lifecycle ------------------------------------------------------
    @property
    def pool_alive(self) -> bool:
        """Whether a worker pool is currently up."""
        return self._pool is not None

    @property
    def processes(self) -> int:
        """Worker processes of the live pool (0 when no pool is up)."""
        return self._processes if self._pool is not None else 0

    def close(self) -> None:
        """Tear down the pool (if any).  The executor stays usable."""
        pool, self._pool = self._pool, None
        self._board = None
        self._socs = None
        self._processes = 0
        self._pairs = set()
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "FlatExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _ensure_pool(
        self,
        socs: Dict[str, Soc],
        pairs: Set[Tuple[str, int]],
        processes: int,
        reason: str,
    ) -> Optional[Any]:
        """A pool matching (SOC universe, processes) with ``pairs`` warm.

        The parent's caches are primed *before* the fork so workers inherit
        them warm.  On creation failure a RuntimeWarning is emitted and
        ``None`` returned -- callers degrade to their serial path.
        """
        if (
            self._pool is not None
            and self._socs == socs
            and self._processes == processes
            and pairs <= self._pairs
        ):
            # The process count must match exactly: dispatch fans tasks
            # out over every pool worker, so reusing a larger pool would
            # silently exceed the caller's documented worker cap.
            return self._pool
        self.close()
        _prime_soc_pairs(socs, pairs)
        pool_context = preferred_pool_context()
        board = None
        if pool_context.get_start_method() == "fork":
            # The incumbent board rides on fork inheritance; spawn pools
            # simply run with dispatch-time limits only.
            try:
                board = pool_context.RawArray(ctypes.c_int64, _BOARD_SLOTS)
            except _POOL_CREATION_ERRORS:
                board = None
        try:
            pool = pool_context.Pool(
                processes=processes,
                initializer=_init_worker,
                initargs=(socs, tuple(sorted(pairs)), board),
            )
        except _POOL_CREATION_ERRORS as error:
            warnings.warn(
                f"{reason}: no worker pool could be created "
                f"({type(error).__name__}: {error}); degrading to the serial "
                "path (results are identical, wall time is not)",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        self._pool = pool
        self._board = board
        self._socs = dict(socs)
        self._processes = processes
        self._pairs = set(pairs)
        return pool

    # -- planning -------------------------------------------------------
    def _plan(
        self, job: ScheduleJob, context: EngineContext, session: Any
    ) -> _Plan:
        """Decompose one job into its flat-task plan.

        Only ``best`` jobs with recognised options decompose; anything
        else (including a best job carrying unknown options, which must
        raise the solver's canonical error) stays whole.
        """
        soc, constraints = context.resolve(job)
        try:
            is_best = normalize_solver_name(job.solver) == "best"
        except (AttributeError, TypeError):
            # job.solver is a validated non-empty str (ScheduleJob raises at
            # construction), so this only guards exotic str subclasses; any
            # such job schedules whole, never silently best-decomposed.
            is_best = False
        if not is_best:
            return _JobPlan(job, constraints)
        options = job.solver_options()
        if not set(options) <= _BEST_OPTION_NAMES:
            return _JobPlan(job, constraints)
        if constraints is not None:
            constraints.validate_for(soc)
        percents = tuple(options.get("percents") or DEFAULT_PERCENTS)
        deltas = tuple(options.get("deltas") or DEFAULT_DELTAS)
        slacks = tuple(options.get("slacks") or DEFAULT_SLACKS)
        sets = session.rectangle_sets(soc, job.config.max_core_width)
        runs = dedupe_grid(
            soc, job.width, job.config, sets, percents, deltas, slacks
        )
        if not runs:  # empty grid: let the solver raise its canonical error
            return _JobPlan(job, constraints)
        bound = lower_bound(
            soc, job.width, job.config.max_core_width, rectangle_sets=sets
        )
        return _GridPlan(
            job=job,
            soc=soc,
            soc_key=job.soc,
            width=job.width,
            constraints=constraints,
            config=job.config,
            runs=order_runs_by_estimate(soc, sets, job.width, runs),
            grid_points=len(percents) * len(deltas) * len(slacks),
            bound=bound,
        )

    # -- dispatch -------------------------------------------------------
    def _dispatch(
        self,
        pool: Any,
        plans: Sequence[_Plan],
        processes: int,
        chunksize: int,
    ) -> None:
        """Stream every plan's tasks through the pool, unordered.

        A sliding backpressure window (a plain semaphore between the
        result loop and the task generator, which runs in the pool's
        feeder thread) keeps enough tasks in flight to saturate the
        workers while leaving later grid tasks undispatched long enough to
        pick up tightened incumbent limits and skip decisions.  On fork
        pools the shared incumbent board supplements this: tasks read
        their plan's freshest incumbent when they *start*, so pruning
        stays tight even for tasks dispatched early in large chunks.
        """
        if not any(isinstance(plan, _GridPlan) for plan in plans):
            # Pure whole-job dispatch: no incumbents to feed, so skip the
            # backpressure machinery and hand the task list over in bulk.
            tasks = [
                _JobTask(job_index=i, job=plan.job, constraints=plan.constraints)
                for i, plan in enumerate(plans)
            ]
            try:
                for job_index, run_index, payload, wall in pool.imap_unordered(
                    _execute_task, tasks, chunksize=chunksize
                ):
                    plans[job_index].absorb(run_index, payload, wall)
            except BaseException:
                self.close()  # drop abandoned in-flight tasks with the pool
                raise
            return

        board = self._board
        slot = 0
        for plan in plans:
            if isinstance(plan, _GridPlan):
                if board is not None and slot < _BOARD_SLOTS:
                    plan.slot = slot
                    board[slot] = 0  # 0 = no incumbent yet
                    slot += 1
                else:
                    plan.slot = -1
        window = max(processes * self._window_factor * chunksize, 2 * chunksize)
        permits = threading.Semaphore(window)
        abort = threading.Event()

        def stream() -> Iterator[Union[_JobTask, _GridTask]]:
            for job_index, plan in enumerate(plans):
                if isinstance(plan, _JobPlan):
                    permits.acquire()
                    if abort.is_set():
                        return
                    yield _JobTask(
                        job_index=job_index,
                        job=plan.job,
                        constraints=plan.constraints,
                    )
                    continue
                for run in plan.runs:
                    if plan.skippable(run):
                        continue
                    permits.acquire()
                    if abort.is_set():
                        return
                    if plan.skippable(run):  # re-check after blocking
                        permits.release()
                        continue
                    yield plan.make_task(job_index, run)

        try:
            for job_index, run_index, payload, wall in pool.imap_unordered(
                _execute_task, stream(), chunksize=chunksize
            ):
                permits.release()
                plan = plans[job_index]
                plan.absorb(run_index, payload, wall)
                if (
                    isinstance(plan, _GridPlan)
                    and plan.slot >= 0
                    and plan.best is not None
                ):
                    board[plan.slot] = plan.best[0]
        except BaseException:
            # Unblock the feeder thread (it may be parked on the
            # semaphore) and drop the pool: abandoned in-flight tasks
            # would otherwise bleed into the next dispatch.
            abort.set()
            for _ in range(window):
                permits.release()
            self.close()
            raise

    # -- entry points ---------------------------------------------------
    def run_jobs(
        self,
        jobs: Iterable[ScheduleJob],
        context: EngineContext,
        workers: int = 0,
        chunksize: Optional[int] = None,
    ) -> SweepResults:
        """Execute a job list on the flat queue; results in job order.

        Semantics (and results, bit for bit) match the historical
        two-layer engine for every worker count; see
        :func:`repro.engine.runner.run_jobs` for the public contract.
        """
        ordered: List[ScheduleJob] = list(jobs)
        if workers < 0:
            raise EngineError(f"workers must be non-negative, got {workers}")
        if not ordered:
            return SweepResults(())
        indexes = [job.index for job in ordered]
        if len(set(indexes)) != len(indexes):
            raise EngineError("job indexes must be unique within one sweep")
        for job in ordered:
            context.resolve(job)  # fail fast on dangling references

        pairs = {(job.soc, job.config.max_core_width) for job in ordered}
        if int(workers) <= 1:
            return self._run_serial(ordered, context, pairs)

        session = get_default_session()
        # Adaptive granularity: explode best jobs into grid-run tasks only
        # when job-level parallelism cannot fill the pool on its own.
        # With plenty of jobs, whole-job dispatch keeps the per-task IPC
        # minimal and each job's internal pruning maximally tight; with
        # few jobs (the Table 1 shape: a handful of best-over-grid cells),
        # decomposition is what creates the parallelism and shrinks
        # stragglers.  Either granularity yields bit-identical results.
        decompose = len(ordered) < 2 * int(workers)
        plans = [
            self._plan(job, context, session)
            if decompose
            else _JobPlan(job, context.resolve(job)[1])
            for job in ordered
        ]
        total_tasks = sum(plan.task_count for plan in plans)
        decomposed = sum(1 for plan in plans if isinstance(plan, _GridPlan))
        processes = min(int(workers), total_tasks)
        if processes <= 1:
            return self._run_serial(ordered, context, pairs)
        pool = self._ensure_pool(
            dict(context.socs), pairs, processes, "flat executor"
        )
        if pool is None:
            return self._run_serial(ordered, context, pairs, degraded=True)
        if chunksize is None:
            # Grid-run tasks are small (often sub-millisecond on compact
            # SOCs), so chunk them to amortise IPC -- the shared incumbent
            # board keeps pruning tight despite the coarser dispatch --
            # but cap the chunk so heterogeneous tails still spread.
            chunksize = min(8, max(1, total_tasks // (processes * 4)))
        self._dispatch(pool, plans, processes, max(1, int(chunksize)))
        results = tuple(plan.finish(session) for plan in plans)
        stats = ExecutorStats(
            jobs=len(ordered),
            decomposed_jobs=decomposed,
            tasks=total_tasks,
            workers=processes,
            degraded_to_serial=False,
        )
        return SweepResults(results, stats=stats)

    def run_grid_runs(
        self,
        soc: Soc,
        total_width: int,
        constraints: Optional[ConstraintSet],
        config: SchedulerConfig,
        runs: Sequence[GridRun],
        grid_points: int,
        bound: int,
        workers: int,
        rectangle_sets: Dict[str, Any],
    ) -> Optional[Tuple[int, int, GridPoint, TestSchedule]]:
        """Fan one best-over-grid sweep out over the shared flat queue.

        The direct entry point for :func:`repro.core.grid_sweep.run_grid_sweep`
        (a ``Session.solve`` of the ``best`` solver with ``workers > 1``),
        so standalone best solves and engine sweeps share one pool.  ``runs``
        must already be deduplicated and estimate-ordered.  Returns the
        winning ``(makespan, run index, point, schedule)``, or ``None``
        when no pool is available (the caller falls back to its serial
        loop; the degrade warning has already been emitted).
        """
        processes = min(int(workers), len(runs))
        if processes <= 1:
            return None
        pairs = {(soc.name, config.max_core_width)}
        pool = self._ensure_pool({soc.name: soc}, pairs, processes, "grid sweep")
        if pool is None:
            return None
        plan = _GridPlan(
            job=None,
            soc=soc,
            soc_key=soc.name,
            width=total_width,
            constraints=constraints,
            config=config,
            runs=runs,
            grid_points=grid_points,
            bound=bound,
        )
        chunksize = min(8, max(1, len(runs) // (processes * 4)))
        self._dispatch(pool, [plan], processes, chunksize)
        return plan.winner(rectangle_sets)

    # -- serial path ----------------------------------------------------
    def _run_serial(
        self,
        jobs: Sequence[ScheduleJob],
        context: EngineContext,
        pairs: Set[Tuple[str, int]],
        degraded: bool = False,
    ) -> SweepResults:
        prime_context_caches(context, pairs)
        results = tuple(execute_job(job, context) for job in jobs)
        stats = ExecutorStats(
            jobs=len(jobs),
            decomposed_jobs=0,
            tasks=len(jobs),
            workers=0,
            degraded_to_serial=degraded,
        )
        return SweepResults(results, stats=stats)


# ----------------------------------------------------------------------
# Process-wide default executor
# ----------------------------------------------------------------------
_DEFAULT_EXECUTOR: Optional[FlatExecutor] = None


def get_default_executor() -> FlatExecutor:
    """The process-wide executor (created on first use, closed at exit).

    The sweep engine's :func:`~repro.engine.runner.run_jobs` and the
    ``best`` solver's grid sweep both dispatch through this executor, so
    one warm pool serves every layer of a session.
    """
    global _DEFAULT_EXECUTOR
    if _DEFAULT_EXECUTOR is None:
        _DEFAULT_EXECUTOR = FlatExecutor()
        atexit.register(close_default_executor)
    return _DEFAULT_EXECUTOR


def close_default_executor() -> None:
    """Tear down the process-wide executor's pool (idempotent)."""
    if _DEFAULT_EXECUTOR is not None:
        _DEFAULT_EXECUTOR.close()

"""Flattened shared-pool executor: one persistent work queue for every layer.

Before this module existed the repository had *two* pool layers that could
not compose: the sweep engine pooled over whole :class:`ScheduleJob`\\ s, and
the ``best`` solver's grid sweep pooled over its deduplicated scheduler
runs.  A ``best`` job executing inside a sweep worker hit multiprocessing's
daemonic-pool restriction and silently fell back to serial grid runs, so
the paper's most expensive experiments (Tables 1/2, Figure 9 -- all sweeps
of best-over-grid solves) never used more than one process per grid point.

:class:`FlatExecutor` replaces both layers with a single flat task queue:

* **Decomposition.**  :meth:`FlatExecutor.run_jobs` breaks every job into
  scheduler-run *tasks*.  A ``best`` job explodes into its deduplicated
  grid runs (reusing :func:`repro.core.grid_sweep.dedupe_grid` and the
  estimate-first ordering), any other solver stays one task.  Parallelism
  granularity is the individual scheduler run, so stragglers shrink and
  nested pools disappear -- workers never need a pool of their own.
* **Dispatch.**  Tasks flow through ``imap_unordered`` behind a sliding
  backpressure window, and results are reassembled deterministically by
  ``(job index, run key)``.  Cross-task incumbent makespans for the same
  ``best`` job feed later tasks of that job two ways: injected into the
  task at yield time, and (on fork pools) published on a shared lock-free
  *incumbent board* that workers re-read when a task actually starts, so
  pruning stays tight even for tasks dispatched early in large chunks.
  Incumbents only ever tighten monotonically towards the final winner --
  a stale (looser) limit can never abort the winner -- so the selected
  schedule, winner grid point and statistics are bit-identical for every
  worker count.
* **Persistence.**  The pool outlives one call: it is created lazily,
  keyed on the *SOC universe* of the :class:`~repro.engine.jobs.EngineContext`
  (constraint sets are small and travel inside tasks, so a Table 1 sweep,
  a Table 2 sweep and a direct ``best`` solve over the same SOC all share
  one pool) plus the worker count and warmed cache pairs, and reused by
  subsequent ``run_jobs`` / ``Session.solve`` calls, keeping the workers'
  warm wrapper-curve and rectangle caches.  A SOC-universe change
  refreshes the pool (cheap under ``fork``: the parent's caches -- warmed
  *before* the fork -- are inherited); :meth:`FlatExecutor.close` tears it
  down explicitly and an ``atexit`` hook closes the process-wide default
  executor.

* **Supervision.**  Dispatch runs under a watchdog (see
  :mod:`repro.engine.faults`): every task failure becomes a structured
  :class:`~repro.engine.faults.FailureRecord`, worker exceptions get a
  bounded deterministic retry (exponential backoff keyed on the task
  fingerprint -- no wall-clock jitter), a stalled or broken pool (worker
  kills surface as stalls under ``multiprocessing.Pool``, which silently
  replaces dead workers and loses their in-flight results) is torn down
  and *resurrected* with only the unacknowledged tasks re-dispatched, a
  task implicated in two pool deaths is *quarantined* (re-run in-process,
  never handed to a worker again), and when no pool can be created at all
  the remaining tasks drain on the deterministic serial path.  Each
  downward step is recorded on the ordered recovery ladder
  ``parallel -> resurrected -> quarantined -> serial``
  (:class:`~repro.engine.faults.RecoveryEvent`), surfaced through
  :class:`~repro.engine.results.ExecutorStats`, result metadata and the
  ``repro chaos`` harness; ``degraded_to_serial`` survives as a derived
  compatibility property.  Because retry, re-dispatch and quarantine all
  re-execute *pure* tasks and reassembly stays keyed on
  ``(job index, run key)``, recovered runs remain bit-identical to the
  fault-free serial reference -- the property the chaos tests pin under
  injected worker kills, exceptions, hangs and pool-creation failures
  (:class:`~repro.engine.faults.FaultPlan`, ``REPRO_FAULT_PLAN``).

When no pool can be created at all (sandboxes without semaphores,
daemonic workers) the executor degrades to the deterministic serial path
-- *observably*: a :class:`RuntimeWarning` is emitted and the returned
:class:`~repro.engine.results.SweepResults` carry a ``serial`` recovery
event (hence ``degraded_to_serial=True``) in their
:class:`~repro.engine.results.ExecutorStats`.
"""

from __future__ import annotations

import atexit
import contextlib
import ctypes
import multiprocessing
import os
import pickle
import threading
import time
import warnings
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.core.data_volume import tester_data_volume
from repro.core.grid_sweep import (
    DEFAULT_DELTAS,
    DEFAULT_PERCENTS,
    DEFAULT_SLACKS,
    GridPoint,
    GridRun,
    GridSweepOutcome,
    _execute_run,
    dedupe_grid,
    order_runs_by_estimate,
    preferred_pool_context,
)
from repro.core.lower_bounds import lower_bound
from repro.core.scheduler import IncumbentAbort, SchedulerConfig
from repro.engine.faults import (
    STAGE_PARALLEL,
    STAGE_QUARANTINED,
    STAGE_RESURRECTED,
    STAGE_SERIAL,
    CancelledSolve,
    FailureRecord,
    FaultPlan,
    RecoveryEvent,
    active_cancel_token,
    apply_task_fault,
    backoff_delay,
    encode_recovery_events,
    format_error,
)
from repro.engine.jobs import EngineContext, EngineError, JobResult, ScheduleJob
from repro.engine.results import ExecutorStats, SweepResults
from repro.engine.shm import (
    PUBLISH_ERRORS,
    ShmSegment,
    adopt_universe,
    load_plan,
    publish_plan,
    publish_universe,
)
from repro.schedule.schedule import TestSchedule
from repro.soc.constraints import ConstraintSet
from repro.soc.soc import Soc
from repro.solvers.registry import normalize_solver_name
from repro.solvers.request import ScheduleRequest
from repro.solvers.session import get_default_session

#: Option names the ``best`` solver understands; a best job carrying any
#: other option is left whole so the solver raises its canonical error.
_BEST_OPTION_NAMES = frozenset({"percents", "deltas", "slacks", "workers"})

#: Exceptions that mean "no pool can be created here" (sandboxes without
#: working semaphores, platforms without fork/spawn, daemonic workers).
_POOL_CREATION_ERRORS = (ImportError, OSError, PermissionError, AssertionError)

try:  # the canonical dead-pool exception lives in concurrent.futures
    from concurrent.futures.process import BrokenProcessPool as _BrokenProcessPool
except ImportError:  # pragma: no cover - ancient/stripped stdlib

    class _BrokenProcessPool(RuntimeError):  # type: ignore[no-redef]
        """Placeholder when concurrent.futures is unavailable."""


#: Exceptions that mean "the pool died under us mid-stream" (a worker was
#: killed hard enough to break the result pipe, or the pool machinery
#: itself tore).  ``BrokenPipeError``/``ConnectionError`` are ``OSError``
#: subclasses; the broad ``OSError`` is deliberate -- on the parent-side
#: result iterator any I/O error is pool infrastructure, never task code
#: (task exceptions come back as :class:`_TaskFailure` payloads).
_POOL_DEATH_ERRORS = (_BrokenProcessPool, OSError, EOFError)

#: Slots on the shared incumbent board (one per concurrently-dispatched
#: grid plan; plans beyond the board fall back to dispatch-time limits).
_BOARD_SLOTS = 1024

#: How many pool deaths a task must be in flight for before it is deemed
#: poisoned and quarantined to the in-process serial path.
_QUARANTINE_STRIKES = 2

#: Watchdog default: a pooled run with no task reply for this long is
#: declared stalled and resurrected.  Generous on purpose -- legitimate
#: scheduler runs are sub-second, so a stall is pathological long before
#: five minutes -- and overridable per executor or via the environment.
DEFAULT_TASK_DEADLINE = 300.0
ENV_TASK_DEADLINE = "REPRO_TASK_DEADLINE"

#: Bounded-retry defaults: a task exception is retried at most this many
#: times, with deterministic exponential backoff (see
#: :func:`repro.engine.faults.backoff_delay`) between rounds.
DEFAULT_MAX_TASK_RETRIES = 2
DEFAULT_RETRY_BACKOFF = 0.05

#: Mid-run abort cadence: workers re-read their task's incumbent-board
#: slot every this many scheduler completion events and raise
#: :class:`~repro.core.scheduler.IncumbentAbort` when the running partial
#: makespan can no longer beat the freshest incumbent.  ``0`` disables the
#: checkpoint (dispatch-time and task-start limits still apply).
DEFAULT_BOARD_POLL = 8
ENV_BOARD_POLL = "REPRO_BOARD_POLL"

#: Chunk-size override: force every pooled dispatch round to batch tasks
#: into chunks of exactly this size (the default derives the size from the
#: queue length and worker count; see :func:`_resolve_chunksize`).
ENV_CHUNK_SIZE = "REPRO_CHUNK_SIZE"

#: Cap on the derived chunk size: a lost chunk re-dispatches every task in
#: it after a pool death, so unbounded chunks would make resurrection
#: rounds arbitrarily expensive on very long queues.
_MAX_CHUNKSIZE = 64


# ----------------------------------------------------------------------
# Per-job execution and cache warming (shared by serial path and workers)
# ----------------------------------------------------------------------
def execute_job(job: ScheduleJob, context: EngineContext) -> JobResult:
    """Run one whole job to completion in the current process.

    The job is dispatched through the process-wide solver session, so its
    Pareto rectangle sets come from (and warm) the shared cache.
    """
    soc, constraints = context.resolve(job)
    return _solve_job(job, soc, constraints)


def _solve_job(
    job: ScheduleJob,
    soc: Soc,
    constraints: Optional[ConstraintSet],
    suppress_fanout: bool = False,
) -> JobResult:
    """``execute_job`` with the context references already resolved.

    ``suppress_fanout`` is set when the job runs *inside* a pool worker:
    the flat pool already is the parallelism, so a solver-level ``workers``
    option is forced serial.  Without this, a ``best`` job dispatched
    whole would attempt a nested pool in a daemonic worker and stamp its
    (environment-dependent) ``degraded_to_serial`` marker into result
    metadata, breaking bit-identity with the serial reference.
    """
    options = job.solver_options()
    if suppress_fanout and options.get("workers"):
        options["workers"] = 0
    result = get_default_session().solve(
        ScheduleRequest(
            soc=soc,
            total_width=job.width,
            solver=job.solver,
            config=job.config,
            constraints=constraints,
            options=options,
        )
    )
    if result.schedule is None:
        raise EngineError(
            f"solver {job.solver!r} produces no schedule and cannot run as an "
            "engine job"
        )
    return JobResult(
        job=job,
        makespan=result.makespan,
        data_volume=result.data_volume,
        schedule=result.schedule,
        metadata=tuple(sorted(result.metadata.items())),
        wall_time=result.wall_time,
        worker=multiprocessing.current_process().name,
    )


def prime_context_caches(
    context: EngineContext,
    pairs: Iterable[Union[Tuple[str, int], int]],
) -> int:
    """Warm the Pareto caches for exactly the referenced (SOC, width) pairs.

    ``pairs`` holds ``(soc_key, max_core_width)`` tuples -- only those
    combinations are warmed, so a multi-SOC context does not pay for the
    full SOC x width cross-product when the job list references a subset.
    Bare ``int`` widths are accepted for backward compatibility and warm
    that width for every SOC in the context.

    Both the per-process testing-time curve memo and the default solver
    session's rectangle cache are primed, so every subsequent solve of a
    referenced combination skips wrapper design entirely.  Returns the
    number of per-core curves now cached.
    """
    resolved: Set[Tuple[str, int]] = set()
    for item in pairs:
        if isinstance(item, tuple):
            key, width = item
            resolved.add((key, int(width)))
        else:  # legacy form: one width for every SOC in the context
            resolved.update((key, int(item)) for key in context.socs)
    return _prime_soc_pairs(dict(context.socs), resolved)


def _prime_soc_pairs(
    socs: Dict[str, Soc], pairs: Iterable[Tuple[str, int]]
) -> int:
    """Warm the curve memo and session rectangle cache for exact pairs."""
    from repro.wrapper.pareto import prime_pareto_cache

    session = get_default_session()
    primed = 0
    for key, width in sorted(set(pairs)):
        soc = socs[key]
        primed += prime_pareto_cache(soc.cores, int(width))
        session.rectangle_sets(soc, int(width))
    return primed


# ----------------------------------------------------------------------
# Worker-side task execution
# ----------------------------------------------------------------------
# SOC universe installed in each pool worker by the initializer (fork
# workers inherit the parent's module state; spawn workers receive it via
# initargs).  Tasks reference SOCs by key -- the one large object ships
# once per worker -- while the (small) constraint sets travel inside each
# task, so the pool does not have to be rebuilt when only the constraint
# vocabulary of a job list changes.
_WORKER_SOCS: Optional[Dict[str, Soc]] = None

# The shared incumbent board: a lock-free int64 array (fork pools only).
# The parent writes each grid plan's tightening incumbent makespan into the
# plan's slot; workers read it when a task starts, so pruning limits stay
# tight even when tasks were dispatched (chunked) long before they run.
# Writes are monotone decreasing towards the final winner, so a torn or
# stale read can only yield a *looser* limit -- never an unsound one.
_WORKER_BOARD: Optional[Any] = None  # repro: fork-local

# The fault-injection plan, installed only in pool workers: the parent's
# quarantine and serial-drain paths run injection-free by construction, so
# every recovery ladder terminates (a persistently-hanging task can only
# hang a disposable worker, never the supervising process).
_WORKER_FAULTS: Optional[FaultPlan] = None  # repro: fork-local

# The mid-run abort cadence, resolved in the parent (see
# :func:`_resolve_board_poll`) and installed per worker by the initializer.
_WORKER_BOARD_POLL: int = DEFAULT_BOARD_POLL  # repro: fork-local


def _init_worker(
    socs: Optional[Dict[str, Soc]],
    pairs: Sequence[Tuple[str, int]],
    board: Optional[Any] = None,
    faults: Optional[FaultPlan] = None,
    universe: Optional[str] = None,
    board_poll: int = DEFAULT_BOARD_POLL,
) -> None:
    """Pool initializer: install the SOC universe, warm the caches.

    Under ``fork`` the priming is a cache hit (the parent warmed the same
    pairs just before creating the pool) and ``socs`` arrives by
    inheritance; under ``spawn``/``forkserver`` the universe -- SOCs plus
    the parent's warmed wrapper-curve tables -- is adopted zero-copy from
    the shared-memory segment named by ``universe`` instead of being
    pickled through ``initargs`` per worker.
    """
    global _WORKER_SOCS, _WORKER_BOARD, _WORKER_FAULTS, _WORKER_BOARD_POLL
    if socs is None:
        assert universe is not None, "worker needs a universe (initargs or shm)"
        _WORKER_SOCS = adopt_universe(universe)
    else:
        _WORKER_SOCS = dict(socs)
    _WORKER_BOARD = board
    _WORKER_FAULTS = faults
    _WORKER_BOARD_POLL = int(board_poll)
    _prime_soc_pairs(_WORKER_SOCS, pairs)


@dataclass(frozen=True)
class _JobTask:
    """One whole job, executed via the worker's solver session.

    The constraint set is resolved in the parent and travels with the
    task (it is small); the SOC stays a key into the worker's universe.
    ``attempt`` is the 1-based dispatch count (stamped by the supervisor;
    it feeds retry bookkeeping and deterministic fault injection).
    """

    job_index: int
    job: ScheduleJob
    constraints: Optional[ConstraintSet]
    attempt: int = 1


@dataclass(frozen=True)
class _GridTask:
    """One deduplicated scheduler run of a decomposed ``best`` job.

    ``limit`` is the incumbent makespan of the owning job at dispatch time
    (monotone-tightening only; ``None`` until the job's first result).
    ``slot`` indexes the shared incumbent board for a fresher limit at run
    time (``-1`` when no board is available).  ``attempt`` is the 1-based
    dispatch count stamped by the supervisor.
    """

    job_index: int
    run_index: int
    soc: str
    width: int
    constraints: Optional[ConstraintSet]
    config: SchedulerConfig
    point: GridPoint
    vector: Tuple[int, ...]
    limit: Optional[int]
    slot: int = -1
    attempt: int = 1


@dataclass(frozen=True)
class _ShmGridTask:
    """A :class:`_GridTask` slimmed to a shared-memory plan reference.

    When the supervisor published the owning plan's run table as an shm
    segment (see :mod:`repro.engine.shm`), the task pickled through the
    pool pipe shrinks to this: the segment name plus indices, the
    dispatch-time ``limit`` and the board ``slot``.  The worker inflates
    it back into a full :class:`_GridTask` against its memoised segment
    attachment (:func:`_inflate_task`).  ``soc``/``width`` ride along so
    :func:`task_fingerprint` -- the chaos-harness contract -- is
    computable on both sides without touching the segment.
    """

    job_index: int
    run_index: int
    soc: str
    width: int
    segment: str
    limit: Optional[int]
    slot: int = -1
    attempt: int = 1


@dataclass(frozen=True)
class _BoardAbort:
    """Reply payload of a grid run killed mid-run by the incumbent board.

    Equivalent to a pruned run for reassembly (the aborted run is strictly
    worse than some completed makespan, so it can never win), but counted
    separately as ``board_aborts``.
    """


_Task = Union[_JobTask, _GridTask, _ShmGridTask]

#: Supervisor-side task identity, stable across retries and resurrection
#: rounds: ``(job index, run index)`` with ``-1`` for whole-job tasks.
_TaskKey = Tuple[int, int]


def _task_key(task: _Task) -> _TaskKey:
    return (task.job_index, -1 if isinstance(task, _JobTask) else task.run_index)


def task_fingerprint(task: _Task) -> str:
    """The stable, human-greppable identity of one task.

    Fault plans match on substrings of this string and the retry backoff
    is keyed on it, so the format is part of the chaos-harness contract:
    ``job:{soc}:w{width}:{solver}:i{job index}`` for whole jobs,
    ``grid:{soc}:w{width}:j{job index}:r{run index}`` for grid runs.
    """
    if isinstance(task, _JobTask):
        job = task.job
        return f"job:{job.soc}:w{job.width}:{job.solver}:i{job.index}"
    return f"grid:{task.soc}:w{task.width}:j{task.job_index}:r{task.run_index}"


@dataclass(frozen=True)
class _TaskFailure:
    """A worker-side task exception, shipped back as an ordinary reply.

    Returning failures as payloads (rather than letting them propagate
    through ``imap_unordered``) keeps the result iterator healthy, so one
    bad task cannot poison the replies of its siblings.  ``exception``
    carries the original exception when it pickles cleanly (verified
    worker-side with a full dumps/loads round-trip), letting the parent
    re-raise the canonical error after retries are exhausted.
    """

    fingerprint: str
    attempt: int
    error: str
    exception: Optional[BaseException] = None


def _portable_exception(
    error: BaseException,
) -> Tuple[Optional[BaseException], str]:
    """``(error, "")`` when it survives a pickle round-trip, else ``(None, why)``.

    Custom ``__reduce__``/``__setstate__`` hooks can raise anything, so the
    probe has to catch broadly; the reason travels back as text so the
    parent's journal still explains why the canonical exception was dropped.
    """
    try:
        pickle.loads(pickle.dumps(error))
    except Exception as probe:
        return None, f"exception not portable ({format_error(probe)})"
    return error, ""


#: What a worker sends back per task, keyed for deterministic reassembly:
#: ``(job_index, run_index, payload, wall_seconds)``.  ``run_index`` is
#: ``None`` for whole-job tasks (payload: the JobResult); for grid tasks
#: the payload is ``None`` (pruned), a bare makespan (completed but not a
#: strict improvement on the dispatch limit -- the schedule stays in the
#: worker to save IPC), or a ``(makespan, schedule)`` pair.  A task that
#: raised ships a :class:`_TaskFailure` payload instead.
_TaskReply = Tuple[int, Optional[int], Any, float]


def _execute_task(task: _Task) -> _TaskReply:
    """Worker entry point: fault-injection hook, payload, failure capture."""
    started = time.perf_counter()
    fingerprint = task_fingerprint(task)
    try:
        if _WORKER_FAULTS is not None:
            apply_task_fault(_WORKER_FAULTS, fingerprint, task.attempt)
        return _execute_payload(task, started)
    except (KeyboardInterrupt, SystemExit):
        # Genuinely fatal: let it kill this worker; the parent's watchdog
        # supervises the resulting stall.
        raise
    except Exception as error:
        run_index = None if isinstance(task, _JobTask) else task.run_index
        portable, note = _portable_exception(error)
        text = format_error(error)
        failure = _TaskFailure(
            fingerprint=fingerprint,
            attempt=task.attempt,
            error=f"{text}; {note}" if note else text,
            exception=portable,
        )
        return (task.job_index, run_index, failure, time.perf_counter() - started)


def _execute_chunk(tasks: Tuple[_Task, ...]) -> Tuple[_TaskReply, ...]:
    """Worker entry point: run a parent-chunked batch of tasks.

    Chunking happens parent-side rather than through ``imap_unordered``'s
    own ``chunksize``: CPython wraps a chunked ``imap_unordered`` in a
    plain flattening generator, which loses the ``next(timeout=...)`` API
    the watchdog needs.  A worker death mid-chunk loses the whole batch's
    replies; every task in it stays unacknowledged and re-dispatches.
    """
    return tuple(_execute_task(task) for task in tasks)


def _inflate_task(task: _ShmGridTask) -> _GridTask:
    """Rebuild the full grid task from the worker's plan-segment view."""
    payload = load_plan(task.segment)
    point, vector = payload.run(task.run_index)
    return _GridTask(
        job_index=task.job_index,
        run_index=task.run_index,
        soc=payload.soc,
        width=payload.width,
        constraints=payload.constraints,
        config=payload.config,
        point=point,
        vector=vector,
        limit=task.limit,
        slot=task.slot,
        attempt=task.attempt,
    )


def _execute_payload(task: _Task, started: float) -> _TaskReply:
    assert _WORKER_SOCS is not None, "worker used before initialization"
    if isinstance(task, _JobTask):
        soc = _WORKER_SOCS[task.job.soc]
        result = _solve_job(task.job, soc, task.constraints, suppress_fanout=True)
        return (task.job_index, None, result, time.perf_counter() - started)
    if isinstance(task, _ShmGridTask):
        task = _inflate_task(task)
    soc = _WORKER_SOCS[task.soc]
    constraints = task.constraints
    limit = task.limit
    probe = None
    probe_interval = 0
    if task.slot >= 0 and _WORKER_BOARD is not None:
        shared = _WORKER_BOARD[task.slot]
        if shared and (limit is None or shared < limit):
            limit = int(shared)
        if _WORKER_BOARD_POLL > 0:
            # Arm the mid-run checkpoint: re-read this plan's board slot
            # every K completion events inside the scheduler event loop.
            board, slot = _WORKER_BOARD, task.slot
            probe_interval = _WORKER_BOARD_POLL

            def probe() -> int:
                return int(board[slot])

    sets = get_default_session().rectangle_sets(soc, task.config.max_core_width)
    try:
        schedule = _execute_run(
            soc,
            task.width,
            constraints or ConstraintSet.unconstrained(),
            task.config,
            sets,
            task.point,
            task.vector,
            limit,
            limit_probe=probe,
            probe_interval=probe_interval,
        )
    except IncumbentAbort:
        # The board proved this run strictly worse than a completed
        # sibling mid-run; ship the (tiny) abort marker instead of a
        # result.  Reassembly treats it as pruned, the journal counts it.
        wall = time.perf_counter() - started
        return (task.job_index, task.run_index, _BoardAbort(), wall)
    wall = time.perf_counter() - started
    if schedule is None:  # pruned by the incumbent limit
        return (task.job_index, task.run_index, None, wall)
    makespan = schedule.makespan
    if task.slot >= 0 and _WORKER_BOARD is not None:
        # Publish the completed makespan so sibling tasks of the same job
        # prune against it without waiting for the parent's round-trip.
        # Any completed makespan bounds the job's final best from above,
        # so the (unlocked) read-compare-write race is benign: a lost
        # update can only leave a looser -- never an unsound -- limit.
        current = _WORKER_BOARD[task.slot]
        if current == 0 or makespan < current:
            _WORKER_BOARD[task.slot] = makespan
    if limit is not None and makespan >= limit:
        # Completed but no strict improvement on the incumbent known at
        # dispatch: the makespan alone decides the winner, so the (large)
        # schedule stays out of the result pipe.  In the rare case this
        # run still wins on the index tie-break, the parent deterministically
        # recomputes its schedule once, limit-free.
        return (task.job_index, task.run_index, makespan, wall)
    return (task.job_index, task.run_index, (makespan, schedule), wall)


# ----------------------------------------------------------------------
# Parent-side plans (one per job)
# ----------------------------------------------------------------------
class _JobPlan:
    """A job executed whole: exactly one task, result passed through."""

    __slots__ = ("job", "constraints", "result", "events", "payload_bytes")

    def __init__(
        self, job: ScheduleJob, constraints: Optional[ConstraintSet]
    ) -> None:
        self.job = job
        self.constraints = constraints
        self.result: Optional[JobResult] = None
        self.events: List[RecoveryEvent] = []
        self.payload_bytes = 0  # representative pickled task size, lazy

    @property
    def task_count(self) -> int:
        return 1

    @property
    def settled(self) -> bool:
        return self.result is not None

    def dispatch_cost(self, task: _Task) -> Tuple[int, int]:
        """``(pipe bytes, bytes saved)`` of one pooled dispatch of ``task``."""
        if self.payload_bytes == 0:
            self.payload_bytes = len(pickle.dumps(task))
        return self.payload_bytes, 0

    def absorb(self, run_index: Optional[int], payload: Any, wall: float) -> None:
        self.result = payload

    def finish(self, session: Any) -> JobResult:
        assert self.result is not None, "job task produced no result"
        result = self.result
        if self.events:
            # Recovery steps that touched this job travel in its metadata
            # (scalar-encoded, so sweep CSV exports grow the column).  A
            # clean run appends nothing, keeping serial/parallel metadata
            # comparisons exact.
            metadata = dict(result.metadata)
            metadata["recovery_events"] = encode_recovery_events(self.events)
            result = replace(result, metadata=tuple(sorted(metadata.items())))
        return result


class _GridPlan:
    """Shared best-over-grid state for one decomposed ``best`` job.

    Tracks the incumbent ``(makespan, run index)`` as grid-task results
    arrive (in any order) and keeps the schedule of the best strict
    improvement seen.  The winner selection rule -- minimal
    ``(makespan, run index)`` -- is exactly the serial sweep's, so the
    outcome is independent of completion order.
    """

    __slots__ = (
        "job",
        "soc",
        "soc_key",
        "width",
        "constraints",
        "config",
        "runs",
        "by_index",
        "grid_points",
        "bound",
        "best",
        "best_schedule",
        "wall",
        "dispatched",
        "slot",
        "acked",
        "events",
        "segment",
        "shm_failed",
        "slim_bytes",
        "fat_bytes",
    )

    def __init__(
        self,
        job: Optional[ScheduleJob],
        soc: Soc,
        soc_key: str,
        width: int,
        constraints: Optional[ConstraintSet],
        config: SchedulerConfig,
        runs: Sequence[GridRun],
        grid_points: int,
        bound: int,
    ) -> None:
        self.job = job
        self.soc = soc
        self.soc_key = soc_key
        self.width = width
        self.constraints = constraints
        self.config = config
        self.runs = tuple(runs)  # estimate-ordered
        self.by_index = {run.index: run for run in self.runs}
        self.grid_points = grid_points
        self.bound = bound
        self.best: Optional[Tuple[int, int]] = None  # (makespan, run index)
        self.best_schedule: Optional[TestSchedule] = None
        self.wall = 0.0
        self.dispatched = 0
        self.slot = -1  # shared incumbent-board slot, assigned at dispatch
        self.acked: Set[int] = set()  # run indexes with an absorbed reply
        self.events: List[RecoveryEvent] = []
        self.segment: Optional[ShmSegment] = None  # published run table
        self.shm_failed = False  # publish failed once: stay on fat tasks
        self.slim_bytes = 0  # representative slim/fat pickled task sizes
        self.fat_bytes = 0

    @property
    def task_count(self) -> int:
        return len(self.runs)

    @property
    def settled(self) -> bool:
        """Every run is acknowledged or provably skippable."""
        return all(
            run.index in self.acked or self.skippable(run) for run in self.runs
        )

    # -- dispatch-side -------------------------------------------------
    def limit(self) -> Optional[int]:
        return self.best[0] if self.best is not None else None

    def skippable(self, run: GridRun) -> bool:
        # Once the incumbent meets the lower bound, only an earlier grid
        # point could still displace it (by tying the makespan with a
        # smaller index); everything else is settled.
        return (
            self.best is not None
            and self.best[0] <= self.bound
            and run.index > self.best[1]
        )

    def make_task(
        self, job_index: int, run: GridRun
    ) -> Union[_GridTask, _ShmGridTask]:
        self.dispatched += 1
        if self.segment is not None:
            return _ShmGridTask(
                job_index=job_index,
                run_index=run.index,
                soc=self.soc_key,
                width=self.width,
                segment=self.segment.name,
                limit=self.limit(),
                slot=self.slot,
            )
        return _GridTask(
            job_index=job_index,
            run_index=run.index,
            soc=self.soc_key,
            width=self.width,
            constraints=self.constraints,
            config=self.config,
            point=run.point,
            vector=run.preferred_widths,
            limit=self.limit(),
            slot=self.slot,
        )

    def dispatch_cost(self, task: _Task) -> Tuple[int, int]:
        """``(pipe bytes, bytes saved)`` of one pooled dispatch of ``task``.

        Representative sizes (measured once per plan on the first run's
        task shape); per-task variation is a few bytes of integer fields.
        """
        if isinstance(task, _ShmGridTask):
            return self.slim_bytes, max(0, self.fat_bytes - self.slim_bytes)
        if self.fat_bytes == 0:
            self.fat_bytes = len(pickle.dumps(task))
        return self.fat_bytes, 0

    # -- result-side ---------------------------------------------------
    def absorb(self, run_index: Optional[int], payload: Any, wall: float) -> None:
        self.wall += wall
        if run_index is not None:
            self.acked.add(run_index)
        if payload is None:  # pruned by the incumbent
            return
        if isinstance(payload, tuple):
            makespan, schedule = payload
        else:
            makespan, schedule = payload, None
        key = (makespan, run_index)
        if self.best is None or key < self.best:
            self.best = key
            self.best_schedule = schedule

    def winner(
        self, rectangle_sets: Dict[str, Any]
    ) -> Tuple[int, int, GridPoint, TestSchedule]:
        """The final ``(makespan, run index, point, schedule)`` of the sweep.

        The first dispatched task runs limit-free and always completes, so
        ``best`` is set by the time dispatch ends.  When the winner's
        schedule stayed in its worker (it tied the incumbent and won only
        on the index tie-break), one deterministic limit-free rerun
        recomputes it here.
        """
        assert self.best is not None, "grid sweep produced no completed run"
        makespan, index = self.best
        run = self.by_index[index]
        schedule = self.best_schedule
        if schedule is None:
            schedule = _execute_run(
                self.soc,
                self.width,
                self.constraints or ConstraintSet.unconstrained(),
                self.config,
                rectangle_sets,
                run.point,
                run.preferred_widths,
                None,
            )
            assert schedule is not None and schedule.makespan == makespan
        return makespan, index, run.point, schedule

    def finish(self, session: Any) -> JobResult:
        """Assemble the JobResult exactly as the undecomposed path would."""
        assert self.job is not None
        soc = self.soc
        constraints = self.constraints
        sets = session.rectangle_sets(soc, self.config.max_core_width)
        makespan, _, point, schedule = self.winner(sets)
        outcome = GridSweepOutcome(
            schedule=schedule,
            winner=point,
            makespan=makespan,
            grid_points=self.grid_points,
            unique_runs=len(self.runs),
            lower_bound=self.bound,
            early_exit=makespan <= self.bound,
            recovery_events=tuple(self.events),
        )
        # Parity with Session.solve: the best solver supports constraints,
        # so its schedules are validated against them.
        schedule.validate(soc, constraints=constraints)
        return JobResult(
            job=self.job,
            makespan=makespan,
            data_volume=tester_data_volume(schedule),
            schedule=schedule,
            metadata=tuple(sorted(outcome.metadata().items())),
            wall_time=self.wall,
            worker="flat-pool",
        )


_Plan = Union[_JobPlan, _GridPlan]


# ----------------------------------------------------------------------
# Supervision bookkeeping
# ----------------------------------------------------------------------
class _Journal:
    """Mutable per-run fault journal (parent-side only).

    Accumulates the structured :class:`FailureRecord`\\ s and recovery
    ladder :class:`RecoveryEvent`\\ s that one ``run_jobs``/``run_grid_runs``
    call produced, plus the matching counters; frozen into
    :class:`~repro.engine.results.ExecutorStats` when the run finishes.
    """

    __slots__ = (
        "failures",
        "events",
        "retries",
        "resurrections",
        "quarantined",
        "pools_created",
        "board_aborts",
        "shm_tasks",
        "payload_bytes",
        "shm_bytes_saved",
    )

    def __init__(self) -> None:
        self.failures: List[FailureRecord] = []
        self.events: List[RecoveryEvent] = []
        self.retries = 0
        self.resurrections = 0
        self.quarantined = 0
        self.pools_created = 0
        self.board_aborts = 0
        self.shm_tasks = 0
        self.payload_bytes = 0
        self.shm_bytes_saved = 0

    def failure(
        self,
        kind: str,
        action: str,
        error: str = "",
        task: str = "",
        attempt: int = 0,
    ) -> FailureRecord:
        record = FailureRecord(
            kind=kind, task=task, attempt=attempt, error=error, action=action
        )
        self.failures.append(record)
        return record

    def event(self, stage: str, reason: str, task: str = "") -> RecoveryEvent:
        event = RecoveryEvent(stage=stage, reason=reason, task=task)
        self.events.append(event)
        return event


@dataclass(frozen=True)
class _RoundFailure:
    """One dead/stalled dispatch round: what broke, and the suspects.

    ``suspects`` holds every task that was dispatched but unacknowledged
    when the pool died -- the only tasks whose work could have been lost,
    and therefore the only ones re-dispatched after resurrection.
    """

    kind: str  # "pool-stall" | "pool-death"
    reason: str  # recovery-event slug: "stalled" | "pool-death"
    error: str
    suspects: Dict[_TaskKey, _Task]


def _resolve_task_deadline(value: Optional[float]) -> Optional[float]:
    """The effective watchdog deadline; ``None`` means disabled."""
    if value is None:
        raw = os.environ.get(ENV_TASK_DEADLINE, "").strip()
        if raw:
            try:
                value = float(raw)
            except ValueError:
                raise EngineError(
                    f"{ENV_TASK_DEADLINE}={raw!r} is not a number"
                ) from None
        else:
            value = DEFAULT_TASK_DEADLINE
    return float(value) if value > 0 else None


def _resolve_board_poll(value: Optional[int]) -> int:
    """The effective mid-run abort cadence; ``0`` means disabled."""
    if value is None:
        raw = os.environ.get(ENV_BOARD_POLL, "").strip()
        if raw:
            try:
                value = int(raw)
            except ValueError:
                raise EngineError(
                    f"{ENV_BOARD_POLL}={raw!r} is not an integer"
                ) from None
        else:
            value = DEFAULT_BOARD_POLL
    if value < 0:
        raise EngineError(f"board poll interval must be non-negative, got {value}")
    return int(value)


def _resolve_chunksize(total_tasks: int, processes: int) -> int:
    """Derive the dispatch chunk size from queue length and worker count.

    Targets roughly a dozen chunks per worker: deep enough that the
    backpressure window stays populated, shallow enough that stragglers
    spread and late chunks are dispatched after the incumbent tightened.
    Capped (see :data:`_MAX_CHUNKSIZE`) so a pool death never forfeits an
    unbounded batch of replies.  ``REPRO_CHUNK_SIZE`` overrides the
    derivation with an exact positive size.
    """
    raw = os.environ.get(ENV_CHUNK_SIZE, "").strip()
    if raw:
        try:
            forced = int(raw)
        except ValueError:
            raise EngineError(
                f"{ENV_CHUNK_SIZE}={raw!r} is not an integer"
            ) from None
        if forced <= 0:
            raise EngineError(
                f"{ENV_CHUNK_SIZE} must be positive, got {forced}"
            )
        return forced
    waves = 12
    return max(1, min(total_tasks // (max(1, processes) * waves), _MAX_CHUNKSIZE))


def _warn_pool_degrade(reason: str, detail: str) -> None:
    warnings.warn(
        f"{reason}: no worker pool could be created ({detail}); degrading "
        "to the serial path (results are identical, wall time is not)",
        RuntimeWarning,
        stacklevel=4,
    )


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class FlatExecutor:
    """A persistent process pool fed by one flat scheduler-run task queue.

    One executor owns (at most) one pool.  The pool is created lazily on
    the first parallel dispatch, keyed on the *SOC universe* (the context's
    key -> SOC mapping -- constraint sets travel inside tasks, so Table 1
    and Table 2 sweeps over the same SOC share one pool), the process
    count and the set of warmed ``(SOC, max width)`` cache pairs; it is
    reused verbatim while those match and refreshed (close + recreate)
    when they change.  ``close()`` tears the pool down; the process-wide
    default executor (:func:`get_default_executor`) is closed at exit.
    """

    def __init__(
        self,
        window_factor: int = 4,
        task_deadline: Optional[float] = None,
        max_task_retries: int = DEFAULT_MAX_TASK_RETRIES,
        retry_backoff: float = DEFAULT_RETRY_BACKOFF,
        fault_plan: Optional[FaultPlan] = None,
        board_poll: Optional[int] = None,
    ) -> None:
        """Configure the supervision envelope.

        ``task_deadline`` is the watchdog: seconds without any task reply
        before the pool is declared stalled and resurrected (``None``
        reads ``REPRO_TASK_DEADLINE`` or falls back to the default; a
        non-positive value disables the watchdog entirely).
        ``max_task_retries`` bounds worker-side retries per task;
        ``retry_backoff`` is the deterministic exponential-backoff base
        (non-positive disables sleeping).  ``fault_plan`` installs a
        deterministic injection schedule in every pool worker (``None``
        reads ``REPRO_FAULT_PLAN``; an empty plan means no injection).
        ``board_poll`` is the mid-run abort cadence in scheduler
        completion events (``None`` reads ``REPRO_BOARD_POLL`` or falls
        back to the default; ``0`` disables mid-run aborts).
        """
        if window_factor < 1:
            raise EngineError("window_factor must be positive")
        self._window_factor = int(window_factor)
        self._task_deadline = _resolve_task_deadline(task_deadline)
        if max_task_retries < 0:
            raise EngineError(
                f"max_task_retries must be non-negative, got {max_task_retries}"
            )
        self._max_task_retries = int(max_task_retries)
        self._retry_backoff = float(retry_backoff)
        self._board_poll = _resolve_board_poll(board_poll)
        plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        self._fault_plan: Optional[FaultPlan] = plan if plan else None
        self._pool_faults_left = plan.pool_failure_budget() if plan else 0
        self._pool: Optional[Any] = None
        self._universe: Optional[ShmSegment] = None
        self._plan_segments: List[ShmSegment] = []
        self._board: Optional[Any] = None
        self._socs: Optional[Dict[str, Soc]] = None
        self._processes = 0
        self._pairs: Set[Tuple[str, int]] = set()
        self._last_failures: Tuple[FailureRecord, ...] = ()
        self._last_events: Tuple[RecoveryEvent, ...] = ()
        self._last_stats: Optional[ExecutorStats] = None

    # -- lifecycle ------------------------------------------------------
    @property
    def pool_alive(self) -> bool:
        """Whether a worker pool is currently up."""
        return self._pool is not None

    @property
    def last_failures(self) -> Tuple[FailureRecord, ...]:
        """The fault journal of the most recent run (empty when clean)."""
        return self._last_failures

    @property
    def last_recovery_events(self) -> Tuple[RecoveryEvent, ...]:
        """The recovery ladder of the most recent run (empty when clean)."""
        return self._last_events

    @property
    def last_stats(self) -> Optional[ExecutorStats]:
        """Execution stats of the most recent pooled run (``None`` before one).

        This is how callers above the solver boundary (the CLI, the bench
        suites) observe the payload-plane counters without them entering
        result metadata -- result metadata stays bit-identical between the
        serial reference and every parallel configuration.
        """
        return self._last_stats

    @property
    def processes(self) -> int:
        """Worker processes of the live pool (0 when no pool is up)."""
        return self._processes if self._pool is not None else 0

    def close(self) -> None:
        """Tear down the pool (if any).  The executor stays usable.

        Idempotent and shutdown-safe: the pool handle is detached before
        teardown begins, so a second ``close()`` (or ``Session.close()``
        after ``use_executor`` already closed, or the atexit hook firing
        after an explicit close) is a pure no-op, and teardown of a pool
        whose workers are already dead or reaped cannot raise out of
        ``close()`` -- ``terminate``/``join`` on a half-collected pool
        during interpreter shutdown is best-effort by construction.

        Plan segments are *not* released here: mid-run resurrection calls
        ``close()`` between rounds and the fresh pool's workers re-attach
        to the surviving segments by name.  They are released in the run
        entry points' ``finally`` (and by their own finalizers as a last
        resort).
        """
        pool, self._pool = self._pool, None
        universe, self._universe = self._universe, None
        self._board = None
        self._socs = None
        self._processes = 0
        self._pairs = set()
        if pool is not None:
            with contextlib.suppress(Exception):
                pool.terminate()
            with contextlib.suppress(Exception):
                pool.join()
        if universe is not None:
            universe.close()

    def __enter__(self) -> "FlatExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _ensure_pool(
        self,
        socs: Dict[str, Soc],
        pairs: Set[Tuple[str, int]],
        processes: int,
        reason: str,
        journal: _Journal,
    ) -> Optional[Any]:
        """A pool matching (SOC universe, processes) with ``pairs`` warm.

        The parent's caches are primed *before* the fork so workers inherit
        them warm.  On creation failure a RuntimeWarning is emitted, a
        ``pool-creation`` :class:`FailureRecord` is journalled and ``None``
        returned -- the supervisor drains the remaining work serially.
        """
        if (
            self._pool is not None
            and self._socs == socs
            and self._processes == processes
            and pairs <= self._pairs
        ):
            # The process count must match exactly: dispatch fans tasks
            # out over every pool worker, so reusing a larger pool would
            # silently exceed the caller's documented worker cap.
            return self._pool
        self.close()
        _prime_soc_pairs(socs, pairs)
        if self._fault_plan is not None and self._pool_faults_left > 0:
            # Injected pool-creation failure: consume one budget unit and
            # behave exactly like the real thing (warning included).
            self._pool_faults_left -= 1
            error_text = "InjectedFault: injected pool-creation failure"
            journal.failure(kind="pool-creation", action="serial", error=error_text)
            _warn_pool_degrade(reason, error_text)
            return None
        pool_context = preferred_pool_context()
        start_method = pool_context.get_start_method()
        board = None
        if start_method == "fork":
            # The incumbent board rides on fork inheritance; spawn pools
            # simply run with dispatch-time limits only.
            try:
                board = pool_context.RawArray(ctypes.c_int64, _BOARD_SLOTS)
            except _POOL_CREATION_ERRORS as error:
                journal.failure(
                    kind="board-creation",
                    action="continue",
                    error=format_error(error),
                )
                board = None
        universe: Optional[ShmSegment] = None
        socs_arg: Optional[Dict[str, Soc]] = socs
        if start_method != "fork":
            # Fork workers inherit the parent's warm caches zero-copy;
            # only non-fork workers need the universe published so their
            # initargs shrink to a segment name instead of pickled SOCs.
            try:
                universe = publish_universe(socs)
                socs_arg = None
            except PUBLISH_ERRORS as error:
                journal.failure(
                    kind="shm-publish",
                    action="continue",
                    error=format_error(error),
                )
                universe = None
                socs_arg = socs
        try:
            pool = pool_context.Pool(
                processes=processes,
                initializer=_init_worker,
                initargs=(
                    socs_arg,
                    tuple(sorted(pairs)),
                    board,
                    self._fault_plan,
                    universe.name if universe is not None else None,
                    self._board_poll,
                ),
            )
        except _POOL_CREATION_ERRORS as error:
            if universe is not None:
                universe.close()
            journal.failure(
                kind="pool-creation", action="serial", error=format_error(error)
            )
            _warn_pool_degrade(reason, format_error(error))
            return None
        journal.pools_created += 1
        self._pool = pool
        self._universe = universe
        self._board = board
        self._socs = dict(socs)
        self._processes = processes
        self._pairs = set(pairs)
        return pool

    def _publish_plans(
        self, plans: Sequence[_Plan], journal: _Journal
    ) -> None:
        """Publish each grid plan's run table into a shared-memory segment.

        After this, ``make_task`` emits slim :class:`_ShmGridTask`
        references instead of fat :class:`_GridTask` payloads.  Publish
        failures are journalled and the plan falls back to fat tasks for
        the rest of the run (``shm_failed`` stops re-attempts on
        resurrection).  Representative slim/fat pickle sizes are recorded
        once per plan for the dispatch-traffic accounting.
        """
        for plan in plans:
            if (
                not isinstance(plan, _GridPlan)
                or plan.segment is not None
                or plan.shm_failed
                or not plan.runs
            ):
                continue
            try:
                segment = publish_plan(
                    plan.soc_key,
                    plan.width,
                    plan.constraints,
                    plan.config,
                    plan.runs,
                )
            except PUBLISH_ERRORS as error:
                plan.shm_failed = True
                journal.failure(
                    kind="shm-publish",
                    action="continue",
                    error=format_error(error),
                )
                continue
            plan.segment = segment
            self._plan_segments.append(segment)
            run = plan.runs[0]
            slim = _ShmGridTask(
                job_index=0,
                run_index=run.index,
                soc=plan.soc_key,
                width=plan.width,
                segment=segment.name,
                limit=None,
            )
            fat = _GridTask(
                job_index=0,
                run_index=run.index,
                soc=plan.soc_key,
                width=plan.width,
                constraints=plan.constraints,
                config=plan.config,
                point=run.point,
                vector=run.preferred_widths,
                limit=None,
            )
            plan.slim_bytes = len(pickle.dumps(slim))
            plan.fat_bytes = len(pickle.dumps(fat))

    def _release_plan_segments(self) -> None:
        """Release every per-run plan segment (end-of-run cleanup)."""
        segments, self._plan_segments = self._plan_segments, []
        for segment in segments:
            segment.close()

    # -- planning -------------------------------------------------------
    def _plan(
        self, job: ScheduleJob, context: EngineContext, session: Any
    ) -> _Plan:
        """Decompose one job into its flat-task plan.

        Only ``best`` jobs with recognised options decompose; anything
        else (including a best job carrying unknown options, which must
        raise the solver's canonical error) stays whole.
        """
        soc, constraints = context.resolve(job)
        try:
            is_best = normalize_solver_name(job.solver) == "best"
        except (AttributeError, TypeError):
            # job.solver is a validated non-empty str (ScheduleJob raises at
            # construction), so this only guards exotic str subclasses; any
            # such job schedules whole, never silently best-decomposed.
            is_best = False
        if not is_best:
            return _JobPlan(job, constraints)
        options = job.solver_options()
        if not set(options) <= _BEST_OPTION_NAMES:
            return _JobPlan(job, constraints)
        if constraints is not None:
            constraints.validate_for(soc)
        percents = tuple(options.get("percents") or DEFAULT_PERCENTS)
        deltas = tuple(options.get("deltas") or DEFAULT_DELTAS)
        slacks = tuple(options.get("slacks") or DEFAULT_SLACKS)
        sets = session.rectangle_sets(soc, job.config.max_core_width)
        runs = dedupe_grid(
            soc, job.width, job.config, sets, percents, deltas, slacks
        )
        if not runs:  # empty grid: let the solver raise its canonical error
            return _JobPlan(job, constraints)
        bound = lower_bound(
            soc, job.width, job.config.max_core_width, rectangle_sets=sets
        )
        return _GridPlan(
            job=job,
            soc=soc,
            soc_key=job.soc,
            width=job.width,
            constraints=constraints,
            config=job.config,
            runs=order_runs_by_estimate(soc, sets, job.width, runs),
            grid_points=len(percents) * len(deltas) * len(slacks),
            bound=bound,
        )

    # -- dispatch -------------------------------------------------------
    def _supervise(
        self,
        plans: Sequence[_Plan],
        socs: Dict[str, Soc],
        pairs: Set[Tuple[str, int]],
        processes: int,
        chunksize: int,
        session: Any,
        journal: _Journal,
        reason: str,
    ) -> None:
        """Drive every plan to settlement, descending the recovery ladder.

        Work proceeds in *rounds*: each round dispatches every pending
        (unacknowledged, unquarantined, unskippable) task through the
        pool.  A clean round that leaves retryable failures is followed by
        another round (bounded per-task attempts, deterministic backoff);
        a stalled or broken pool is torn down, tasks implicated in
        ``_QUARANTINE_STRIKES`` pool deaths are quarantined to an
        in-process run, and the pool is resurrected for the survivors.
        When no pool can be created the remaining tasks drain on the
        serial path.  Every step is journalled; clean runs journal
        nothing, which is what keeps their results and metadata
        bit-identical to the serial reference.
        """
        attempts: Dict[_TaskKey, int] = {}
        suspect_strikes: Dict[_TaskKey, int] = {}
        quarantined: Set[_TaskKey] = set()
        resurrect_reason: Optional[str] = None
        while not all(plan.settled for plan in plans):
            pool = self._ensure_pool(socs, pairs, processes, reason, journal)
            if pool is None:
                event = journal.event(STAGE_SERIAL, reason="pool-creation")
                if journal.pools_created:
                    # Mid-run downgrade: jobs that still had pending work
                    # record it.  An *entry* downgrade (no pool ever
                    # existed) stays out of job metadata so results match
                    # the serial reference exactly, as they always did.
                    for plan in plans:
                        if not plan.settled:
                            plan.events.append(event)
                self._drain_serial(plans, socs, session)
                return
            if resurrect_reason is not None:
                journal.resurrections += 1
                event = journal.event(STAGE_RESURRECTED, reason=resurrect_reason)
                for plan in plans:
                    if not plan.settled:
                        plan.events.append(event)
                resurrect_reason = None
            self._publish_plans(plans, journal)
            try:
                failure, retry_delay = self._stream_round(
                    pool, plans, processes, chunksize, attempts, quarantined, journal
                )
            except (KeyboardInterrupt, SystemExit) as error:
                journal.failure(
                    kind="fatal", action="raise", error=format_error(error)
                )
                self.close()  # drop abandoned in-flight tasks with the pool
                raise
            except Exception:
                # Already journalled at the failure site; the pool goes
                # with the abandoned in-flight tasks.
                self.close()
                raise
            if failure is None:
                if retry_delay > 0:
                    time.sleep(retry_delay)
                continue  # settled plans end the loop; retries re-dispatch
            # The pool is stalled or broken: record, tear it down, add a
            # strike against every unacknowledged task, quarantine repeat
            # offenders in-process, then resurrect for the survivors.
            journal.failure(
                kind=failure.kind, action="resurrect", error=failure.error
            )
            self.close()
            ordered_suspects = sorted(failure.suspects)
            for key in ordered_suspects:
                suspect_strikes[key] = suspect_strikes.get(key, 0) + 1
            for key in ordered_suspects:
                if suspect_strikes[key] < _QUARANTINE_STRIKES or key in quarantined:
                    continue
                task = failure.suspects[key]
                fingerprint = task_fingerprint(task)
                quarantined.add(key)
                journal.quarantined += 1
                journal.failure(
                    kind=failure.kind,
                    action="quarantine",
                    error=failure.error,
                    task=fingerprint,
                    attempt=attempts.get(key, 0),
                )
                event = journal.event(
                    STAGE_QUARANTINED, reason=failure.reason, task=fingerprint
                )
                plans[key[0]].events.append(event)
                # In-process, injection-free, bounded by the current
                # incumbent: the ladder always terminates here.
                self._run_task_in_process(plans, socs, session, task)
            resurrect_reason = failure.reason

    def _stream_round(
        self,
        pool: Any,
        plans: Sequence[_Plan],
        processes: int,
        chunksize: int,
        attempts: Dict[_TaskKey, int],
        quarantined: Set[_TaskKey],
        journal: _Journal,
    ) -> Tuple[Optional[_RoundFailure], float]:
        """One dispatch round: stream pending tasks, absorb replies.

        A sliding backpressure window (a plain semaphore between the
        result loop and the task generator, which runs in the pool's
        feeder thread) keeps enough tasks in flight to saturate the
        workers while leaving later grid tasks undispatched long enough to
        pick up tightened incumbent limits and skip decisions.  On fork
        pools the shared incumbent board supplements this: tasks read
        their plan's freshest incumbent when they *start*, so pruning
        stays tight even for tasks dispatched early in large chunks.

        Returns ``(None, retry_delay)`` when the round ran to completion
        (``retry_delay > 0`` means retryable task failures were journalled
        and their tasks left unacknowledged for the next round), or a
        :class:`_RoundFailure` capturing a stalled/broken pool with the
        unacknowledged suspects.  Retry-exhausted task errors re-raise the
        task's own exception.
        """
        board = self._board
        slot = 0
        for plan in plans:
            if isinstance(plan, _GridPlan):
                if board is not None and slot < _BOARD_SLOTS:
                    plan.slot = slot
                    # Re-seed across rounds: a resurrected pool's fresh
                    # board starts from the incumbents already absorbed.
                    board[slot] = plan.best[0] if plan.best is not None else 0
                    slot += 1
                else:
                    plan.slot = -1
        window = max(processes * self._window_factor * chunksize, 2 * chunksize)
        permits = threading.Semaphore(window)
        abort = threading.Event()
        lock = threading.Lock()
        inflight: Dict[_TaskKey, _Task] = {}

        def stamp(task: _Task) -> _Task:
            key = _task_key(task)
            with lock:
                attempt = attempts.get(key, 0) + 1
                attempts[key] = attempt
                stamped = replace(task, attempt=attempt)
                inflight[key] = stamped
                # Dispatch-traffic accounting: bytes actually sent down
                # the pool pipe, counted per dispatch (re-dispatches
                # included -- those bytes really are re-sent).
                sent, saved = plans[key[0]].dispatch_cost(stamped)
                journal.payload_bytes += sent
                if isinstance(stamped, _ShmGridTask):
                    journal.shm_tasks += 1
                    journal.shm_bytes_saved += saved
            return stamped

        def stream() -> Iterator[_Task]:
            for job_index, plan in enumerate(plans):
                if isinstance(plan, _JobPlan):
                    if plan.result is not None or (job_index, -1) in quarantined:
                        continue
                    permits.acquire()
                    if abort.is_set():
                        return
                    yield stamp(
                        _JobTask(
                            job_index=job_index,
                            job=plan.job,
                            constraints=plan.constraints,
                        )
                    )
                    continue
                for run in plan.runs:
                    if (
                        run.index in plan.acked
                        or (job_index, run.index) in quarantined
                        or plan.skippable(run)
                    ):
                        continue
                    permits.acquire()
                    if abort.is_set():
                        return
                    if plan.skippable(run):  # re-check after blocking
                        permits.release()
                        continue
                    yield stamp(plan.make_task(job_index, run))

        def chunked() -> Iterator[Tuple[_Task, ...]]:
            batch: List[_Task] = []
            for task in stream():
                batch.append(task)
                if len(batch) >= chunksize:
                    yield tuple(batch)
                    batch = []
            if batch:
                yield tuple(batch)

        retry_delay = 0.0
        iterator = pool.imap_unordered(_execute_chunk, chunked(), chunksize=1)
        try:
            while True:
                token = active_cancel_token()
                if token is not None and token.cancelled():
                    # Cooperative cancellation checkpoint (service layer):
                    # journal the abandonment, then raise -- _supervise's
                    # escalation path tears the pool down, dropping every
                    # in-flight task with it.
                    reason = token.reason()
                    journal.failure(kind="cancelled", action="raise", error=reason)
                    raise CancelledSolve(reason)
                try:
                    if self._task_deadline is not None:
                        replies = iterator.next(timeout=self._task_deadline)
                    else:
                        replies = next(iterator)
                except StopIteration:
                    return None, retry_delay
                except multiprocessing.TimeoutError:
                    with lock:
                        suspects = dict(inflight)
                    return (
                        _RoundFailure(
                            kind="pool-stall",
                            reason="stalled",
                            error=(
                                f"no task reply within {self._task_deadline:.6g}s; "
                                f"{len(suspects)} task(s) unacknowledged"
                            ),
                            suspects=suspects,
                        ),
                        0.0,
                    )
                except _POOL_DEATH_ERRORS as error:
                    with lock:
                        suspects = dict(inflight)
                    return (
                        _RoundFailure(
                            kind="pool-death",
                            reason="pool-death",
                            error=format_error(error),
                            suspects=suspects,
                        ),
                        0.0,
                    )
                for reply in replies:
                    job_index, run_index, payload, wall = reply
                    permits.release()
                    key = (job_index, run_index if run_index is not None else -1)
                    with lock:
                        inflight.pop(key, None)
                    plan = plans[job_index]
                    if isinstance(payload, _TaskFailure):
                        if payload.attempt <= self._max_task_retries:
                            # Leave the task unacknowledged: the next round
                            # re-dispatches it with a bumped attempt number.
                            journal.retries += 1
                            journal.failure(
                                kind="task-error",
                                action="retry",
                                error=payload.error,
                                task=payload.fingerprint,
                                attempt=payload.attempt,
                            )
                            event = journal.event(
                                STAGE_PARALLEL,
                                reason="retried",
                                task=payload.fingerprint,
                            )
                            plan.events.append(event)
                            retry_delay = max(
                                retry_delay,
                                backoff_delay(
                                    payload.fingerprint,
                                    payload.attempt,
                                    self._retry_backoff,
                                ),
                            )
                            continue
                        journal.failure(
                            kind="task-error",
                            action="raise",
                            error=payload.error,
                            task=payload.fingerprint,
                            attempt=payload.attempt,
                        )
                        if payload.exception is not None:
                            raise payload.exception
                        raise EngineError(
                            f"task {payload.fingerprint} failed after "
                            f"{payload.attempt} attempt(s): {payload.error}"
                        )
                    if isinstance(payload, _BoardAbort):
                        # A mid-run board abort: the run provably could
                        # not beat an already-completed incumbent, so it
                        # is acknowledged exactly like a pruned run.
                        journal.board_aborts += 1
                        payload = None
                    plan.absorb(run_index, payload, wall)
                    if (
                        isinstance(plan, _GridPlan)
                        and plan.slot >= 0
                        and plan.best is not None
                        and board is not None
                    ):
                        board[plan.slot] = plan.best[0]
        finally:
            # Unblock the feeder thread (it may be parked on the
            # semaphore) whatever way the round ended.
            abort.set()
            for _ in range(window + 1):
                permits.release()

    # -- in-process execution (quarantine and serial drain) -------------
    def _run_task_in_process(
        self,
        plans: Sequence[_Plan],
        socs: Dict[str, Soc],
        session: Any,
        task: _Task,
    ) -> None:
        """Execute one task in the supervising process and absorb it.

        Used for quarantined tasks and the serial drain.  Injection-free
        (the fault plan lives only in pool workers) and bounded by the
        plan's *current* incumbent -- fresher than any dispatch-time
        limit, and pruning is monotone, so the winner is unaffected.
        """
        started = time.perf_counter()
        plan = plans[task.job_index]
        if isinstance(task, _JobTask):
            result = _solve_job(
                task.job, socs[task.job.soc], task.constraints, suppress_fanout=True
            )
            plan.absorb(None, result, time.perf_counter() - started)
            return
        assert isinstance(plan, _GridPlan)
        sets = session.rectangle_sets(plan.soc, plan.config.max_core_width)
        # Works for fat and slim grid tasks alike: the parent's plan holds
        # every run, so a slim task needs no segment attach here.
        run = plan.by_index[task.run_index]
        schedule = _execute_run(
            plan.soc,
            plan.width,
            plan.constraints or ConstraintSet.unconstrained(),
            plan.config,
            sets,
            run.point,
            run.preferred_widths,
            plan.limit(),
        )
        payload = None if schedule is None else (schedule.makespan, schedule)
        plan.absorb(task.run_index, payload, time.perf_counter() - started)

    def _drain_serial(
        self, plans: Sequence[_Plan], socs: Dict[str, Soc], session: Any
    ) -> None:
        """Run every pending task in-process, in deterministic plan order."""
        for job_index, plan in enumerate(plans):
            if isinstance(plan, _JobPlan):
                if plan.result is None:
                    self._run_task_in_process(
                        plans,
                        socs,
                        session,
                        _JobTask(
                            job_index=job_index,
                            job=plan.job,
                            constraints=plan.constraints,
                        ),
                    )
                continue
            for run in plan.runs:
                if run.index in plan.acked or plan.skippable(run):
                    continue
                self._run_task_in_process(
                    plans, socs, session, plan.make_task(job_index, run)
                )

    # -- entry points ---------------------------------------------------
    def run_jobs(
        self,
        jobs: Iterable[ScheduleJob],
        context: EngineContext,
        workers: int = 0,
        chunksize: Optional[int] = None,
    ) -> SweepResults:
        """Execute a job list on the flat queue; results in job order.

        Semantics (and results, bit for bit) match the historical
        two-layer engine for every worker count; see
        :func:`repro.engine.runner.run_jobs` for the public contract.
        """
        ordered: List[ScheduleJob] = list(jobs)
        if workers < 0:
            raise EngineError(f"workers must be non-negative, got {workers}")
        if not ordered:
            return SweepResults(())
        indexes = [job.index for job in ordered]
        if len(set(indexes)) != len(indexes):
            raise EngineError("job indexes must be unique within one sweep")
        for job in ordered:
            context.resolve(job)  # fail fast on dangling references

        pairs = {(job.soc, job.config.max_core_width) for job in ordered}
        if int(workers) <= 1:
            return self._run_serial(ordered, context, pairs)

        session = get_default_session()
        # Adaptive granularity: explode best jobs into grid-run tasks only
        # when job-level parallelism cannot fill the pool on its own.
        # With plenty of jobs, whole-job dispatch keeps the per-task IPC
        # minimal and each job's internal pruning maximally tight; with
        # few jobs (the Table 1 shape: a handful of best-over-grid cells),
        # decomposition is what creates the parallelism and shrinks
        # stragglers.  Either granularity yields bit-identical results.
        decompose = len(ordered) < 2 * int(workers)
        plans = [
            self._plan(job, context, session)
            if decompose
            else _JobPlan(job, context.resolve(job)[1])
            for job in ordered
        ]
        total_tasks = sum(plan.task_count for plan in plans)
        decomposed = sum(1 for plan in plans if isinstance(plan, _GridPlan))
        processes = min(int(workers), total_tasks)
        if processes <= 1:
            return self._run_serial(ordered, context, pairs)
        if chunksize is None:
            # Grid-run tasks are small (often sub-millisecond on compact
            # SOCs), so chunk them to amortise IPC -- the shared incumbent
            # board keeps pruning tight despite the coarser dispatch --
            # but cap the chunk so heterogeneous tails still spread.
            chunksize = _resolve_chunksize(total_tasks, processes)
        if self._fault_plan is not None:
            # Chaos runs pin chunksize to 1: a lost chunk implicates only
            # the task that actually broke the pool, keeping quarantine
            # attribution (and the tests asserting it) exact.
            chunksize = 1
        journal = _Journal()
        try:
            self._supervise(
                plans,
                dict(context.socs),
                pairs,
                processes,
                max(1, int(chunksize)),
                session,
                journal,
                "flat executor",
            )
        finally:
            self._release_plan_segments()
            self._last_failures = tuple(journal.failures)
            self._last_events = tuple(journal.events)
        results = tuple(plan.finish(session) for plan in plans)
        stats = ExecutorStats(
            jobs=len(ordered),
            decomposed_jobs=decomposed,
            tasks=total_tasks,
            workers=processes if journal.pools_created else 0,
            retries=journal.retries,
            resurrections=journal.resurrections,
            quarantined=journal.quarantined,
            board_aborts=journal.board_aborts,
            shm_tasks=journal.shm_tasks,
            payload_bytes=journal.payload_bytes,
            shm_bytes_saved=journal.shm_bytes_saved,
            recovery_events=tuple(journal.events),
            failures=tuple(journal.failures),
        )
        self._last_stats = stats
        return SweepResults(results, stats=stats)

    def run_grid_runs(
        self,
        soc: Soc,
        total_width: int,
        constraints: Optional[ConstraintSet],
        config: SchedulerConfig,
        runs: Sequence[GridRun],
        grid_points: int,
        bound: int,
        workers: int,
        rectangle_sets: Dict[str, Any],
    ) -> Tuple[
        Optional[Tuple[int, int, GridPoint, TestSchedule]],
        Tuple[RecoveryEvent, ...],
        Tuple[FailureRecord, ...],
        Optional[ExecutorStats],
    ]:
        """Fan one best-over-grid sweep out over the shared flat queue.

        The direct entry point for :func:`repro.core.grid_sweep.run_grid_sweep`
        (a ``Session.solve`` of the ``best`` solver with ``workers > 1``),
        so standalone best solves and engine sweeps share one pool.  ``runs``
        must already be deduplicated and estimate-ordered.  Returns the
        winning ``(makespan, run index, point, schedule)`` plus the run's
        recovery ladder, fault journal and execution stats (``None`` stats
        when the executor declined to run).  The winner is ``None`` only
        when the executor declines to parallelise (too few runs per
        worker); pool failures are recovered *internally* -- resurrection,
        quarantine or serial drain -- and still produce the winner, with
        the path taken reported through the events.
        """
        processes = min(int(workers), len(runs))
        if processes <= 1:
            return None, (), (), None
        pairs = {(soc.name, config.max_core_width)}
        plan = _GridPlan(
            job=None,
            soc=soc,
            soc_key=soc.name,
            width=total_width,
            constraints=constraints,
            config=config,
            runs=runs,
            grid_points=grid_points,
            bound=bound,
        )
        chunksize = _resolve_chunksize(len(runs), processes)
        if self._fault_plan is not None:
            chunksize = 1  # exact quarantine attribution under chaos
        journal = _Journal()
        session = get_default_session()
        try:
            self._supervise(
                [plan],
                {soc.name: soc},
                pairs,
                processes,
                chunksize,
                session,
                journal,
                "grid sweep",
            )
        finally:
            self._release_plan_segments()
            self._last_failures = tuple(journal.failures)
            self._last_events = tuple(journal.events)
        stats = ExecutorStats(
            jobs=1,
            decomposed_jobs=1,
            tasks=len(runs),
            workers=processes if journal.pools_created else 0,
            retries=journal.retries,
            resurrections=journal.resurrections,
            quarantined=journal.quarantined,
            board_aborts=journal.board_aborts,
            shm_tasks=journal.shm_tasks,
            payload_bytes=journal.payload_bytes,
            shm_bytes_saved=journal.shm_bytes_saved,
            recovery_events=tuple(journal.events),
            failures=tuple(journal.failures),
        )
        self._last_stats = stats
        return (
            plan.winner(rectangle_sets),
            tuple(journal.events),
            tuple(journal.failures),
            stats,
        )

    # -- serial path ----------------------------------------------------
    def _run_serial(
        self,
        jobs: Sequence[ScheduleJob],
        context: EngineContext,
        pairs: Set[Tuple[str, int]],
    ) -> SweepResults:
        """The requested-serial path (``workers <= 1``): no pool, no journal."""
        prime_context_caches(context, pairs)
        results = tuple(execute_job(job, context) for job in jobs)
        stats = ExecutorStats(
            jobs=len(jobs),
            decomposed_jobs=0,
            tasks=len(jobs),
            workers=0,
        )
        return SweepResults(results, stats=stats)


# ----------------------------------------------------------------------
# Process-wide default executor
# ----------------------------------------------------------------------
_DEFAULT_EXECUTOR: Optional[FlatExecutor] = None


def get_default_executor() -> FlatExecutor:
    """The process-wide executor (created on first use, closed at exit).

    The sweep engine's :func:`~repro.engine.runner.run_jobs` and the
    ``best`` solver's grid sweep both dispatch through this executor, so
    one warm pool serves every layer of a session.
    """
    global _DEFAULT_EXECUTOR
    if _DEFAULT_EXECUTOR is None:
        _DEFAULT_EXECUTOR = FlatExecutor()
        atexit.register(close_default_executor)
    return _DEFAULT_EXECUTOR


def close_default_executor() -> None:
    """Tear down the process-wide executor's pool (idempotent)."""
    if _DEFAULT_EXECUTOR is not None:
        _DEFAULT_EXECUTOR.close()


@contextlib.contextmanager
def use_executor(executor: FlatExecutor) -> Iterator[FlatExecutor]:
    """Temporarily install ``executor`` as the process-wide default.

    The previous default (if any) keeps its pool and is restored on exit;
    the installed executor's pool is closed.  This is how the chaos
    harness (``repro chaos``, :mod:`repro.engine.faults`) routes a whole
    solve -- grid fan-out included -- through an executor armed with a
    :class:`~repro.engine.faults.FaultPlan` and a tight task deadline
    without disturbing the session's warm default pool.

    The restore runs in a ``finally`` *before* the close, so the previous
    default comes back even when the body raises mid-dispatch and even if
    the installed executor's teardown were to misbehave (``close()`` is
    itself exception-safe); a failed solve can never leave the process
    default pointing at the temporary executor.
    """
    global _DEFAULT_EXECUTOR
    previous = _DEFAULT_EXECUTOR
    _DEFAULT_EXECUTOR = executor
    try:
        yield executor
    finally:
        _DEFAULT_EXECUTOR = previous
        executor.close()

"""Declarative parameter grids for the sweep engine.

A :class:`ParameterGrid` is an ordered collection of named axes; expanding it
yields one point (a ``dict`` of axis name to value) per element of the
cartesian product, in deterministic row-major order (the first axis varies
slowest).  The grid is the single source of truth for both the *size* of a
sweep and the *order* in which jobs are generated, which is what lets the
parallel executor reproduce the serial tie-breaking exactly: the job index
assigned during expansion is the tie-break key during aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Sequence, Tuple


class GridError(ValueError):
    """Raised when a parameter grid is structurally invalid."""


@dataclass(frozen=True)
class ParameterGrid:
    """An ordered, named cartesian product of parameter values.

    Parameters
    ----------
    axes:
        ``(name, values)`` pairs.  Expansion order is row-major: the first
        axis varies slowest, the last axis fastest -- exactly the order of
        the equivalent nested ``for`` loops.
    """

    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        normalized = []
        seen = set()
        for axis in self.axes:
            name, values = axis
            name = str(name)
            if not name:
                raise GridError("axis names must be non-empty strings")
            if name in seen:
                raise GridError(f"duplicate axis name {name!r}")
            seen.add(name)
            values = tuple(values)
            if not values:
                raise GridError(f"axis {name!r} has no values")
            normalized.append((name, values))
        object.__setattr__(self, "axes", tuple(normalized))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, mapping: Mapping[str, Sequence[Any]]) -> "ParameterGrid":
        """Build a grid from an axis-name to values mapping (ordered)."""
        return cls(tuple((name, tuple(values)) for name, values in mapping.items()))

    @classmethod
    def of(cls, **axes: Sequence[Any]) -> "ParameterGrid":
        """Build a grid from keyword arguments, in keyword order."""
        return cls.from_dict(axes)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        """The axis names, in expansion order."""
        return tuple(name for name, _ in self.axes)

    def values(self, name: str) -> Tuple[Any, ...]:
        """The values of one axis."""
        for axis_name, axis_values in self.axes:
            if axis_name == name:
                return axis_values
        raise GridError(f"grid has no axis named {name!r}")

    def __len__(self) -> int:
        if not self.axes:
            return 0
        count = 1
        for _, values in self.axes:
            count *= len(values)
        return count

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def points(self) -> Iterator[Dict[str, Any]]:
        """Yield every grid point, row-major (first axis slowest)."""

        def expand(axis_index: int, partial: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
            if axis_index == len(self.axes):
                yield dict(partial)
                return
            name, values = self.axes[axis_index]
            for value in values:
                partial[name] = value
                yield from expand(axis_index + 1, partial)
            partial.pop(name, None)

        if self.axes:
            yield from expand(0, {})

    def enumerate_points(self, start: int = 0) -> Iterator[Tuple[int, Dict[str, Any]]]:
        """Yield ``(index, point)`` pairs; the index is the serial job order."""
        index = start
        for point in self.points():
            yield index, point
            index += 1

    def with_axis(self, name: str, values: Sequence[Any]) -> "ParameterGrid":
        """A copy with one axis replaced (or appended if absent)."""
        values = tuple(values)
        axes = list(self.axes)
        for position, (axis_name, _) in enumerate(axes):
            if axis_name == name:
                axes[position] = (name, values)
                break
        else:
            axes.append((name, values))
        return ParameterGrid(tuple(axes))

"""Typed job and result records for the sweep engine.

A :class:`ScheduleJob` is one independent unit of work: schedule one SOC at
one TAM width with one :class:`~repro.core.scheduler.SchedulerConfig` and one
(optionally named) constraint set.  Jobs reference their SOC and constraints
*by key* into an :class:`EngineContext` rather than embedding them, so that a
thousand-job grid pickles the (potentially large) SOC description once per
worker instead of once per job.

Everything here is a frozen dataclass built from immutable parts, so jobs
and results are picklable (they cross process boundaries) and comparable
(serial and parallel runs of the same grid must produce *equal* results --
the test suite asserts bit-identical schedules).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Tuple

from repro.core.scheduler import SchedulerConfig
from repro.schedule.schedule import TestSchedule
from repro.soc.constraints import ConstraintSet
from repro.soc.soc import Soc


class EngineError(RuntimeError):
    """Raised when the engine is asked to run an ill-formed sweep."""


@dataclass(frozen=True)
class ScheduleJob:
    """One schedulable grid point.

    Parameters
    ----------
    index:
        Position of this job in the grid expansion order.  Doubles as the
        deterministic tie-break key during aggregation: among equal
        makespans, the job generated first wins, which reproduces the
        serial loop's "keep the first strict improvement" behaviour.
    soc:
        Key of the SOC in the :class:`EngineContext`.
    width:
        Total SOC TAM width for this run.
    config:
        Scheduler parameters (percent / delta / insertion slack / ...).
    constraints:
        Key of the constraint set in the context, or ``None`` for
        unconstrained non-preemptive scheduling.
    solver:
        Registry name of the solver to run (see :mod:`repro.solvers`);
        defaults to the paper scheduler.  The solver must produce a
        schedule (bound-only solvers cannot be engine jobs).
    options:
        Solver-specific options, as a mapping or ``(name, value)`` pairs
        (normalised to name-sorted pairs so equal option sets compare
        equal); e.g. a trimmed ``percents`` grid for the ``best`` solver.
    group:
        Aggregation key: results sharing a group compete for "best of
        group" (e.g. ``(soc, width, mode)`` for a Table 1 cell).
    tags:
        Extra ``(name, value)`` metadata carried through to result records
        (e.g. the scheduler mode or preemption budget of the grid point).
    """

    index: int
    soc: str
    width: int
    config: SchedulerConfig = field(default_factory=SchedulerConfig)
    constraints: Optional[str] = None
    solver: str = "paper"
    options: Tuple[Tuple[str, Any], ...] = ()
    group: Tuple[Any, ...] = ()
    tags: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.index < 0:
            raise EngineError(f"job index must be non-negative, got {self.index}")
        if self.width <= 0:
            raise EngineError(f"TAM width must be positive, got {self.width}")
        if not self.solver:
            raise EngineError("a job must name a solver")
        options = self.options
        if isinstance(options, Mapping):
            options = tuple(sorted(options.items()))
        else:
            options = tuple(sorted((str(name), value) for name, value in options))
        object.__setattr__(self, "options", options)
        object.__setattr__(self, "group", tuple(self.group))
        object.__setattr__(
            self, "tags", tuple((str(name), value) for name, value in self.tags)
        )

    def solver_options(self) -> dict:
        """The options pairs as the dict a :class:`ScheduleRequest` takes."""
        return dict(self.options)

    def tag(self, name: str, default: Any = None) -> Any:
        """Look up one tag value by name."""
        for tag_name, value in self.tags:
            if tag_name == name:
                return value
        return default


@dataclass(frozen=True)
class JobResult:
    """The outcome of executing one :class:`ScheduleJob`.

    ``metadata`` carries the solver's result metadata (e.g. the winning
    grid point of a ``best`` sweep); it is deterministic and participates
    in equality.  ``wall_time`` and ``worker`` describe *where and how
    long* the job ran and are excluded from equality so that a serial and
    a parallel run of the same grid compare equal record-for-record.
    """

    job: ScheduleJob
    makespan: int
    data_volume: int
    schedule: TestSchedule
    metadata: Tuple[Tuple[str, Any], ...] = ()
    wall_time: float = field(default=0.0, compare=False)
    worker: str = field(default="serial", compare=False)

    def __post_init__(self) -> None:
        metadata = self.metadata
        if isinstance(metadata, Mapping):
            metadata = tuple(sorted(metadata.items()))
        else:
            metadata = tuple(sorted((str(name), value) for name, value in metadata))
        object.__setattr__(self, "metadata", metadata)


@dataclass(frozen=True)
class EngineContext:
    """Shared, read-only inputs of a sweep: SOCs and named constraint sets.

    The context is shipped to every worker once (via the pool initializer)
    and resolved per job; see the module docstring.
    """

    socs: Mapping[str, Soc]
    constraints: Mapping[str, ConstraintSet] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "socs", dict(self.socs))
        object.__setattr__(self, "constraints", dict(self.constraints))
        if not self.socs:
            raise EngineError("an engine context needs at least one SOC")

    @classmethod
    def for_soc(
        cls, soc: Soc, constraints: Optional[Mapping[str, ConstraintSet]] = None
    ) -> "EngineContext":
        """A context holding a single SOC under its own name."""
        return cls(socs={soc.name: soc}, constraints=constraints or {})

    def resolve(self, job: ScheduleJob) -> Tuple[Soc, Optional[ConstraintSet]]:
        """The SOC and constraint set a job refers to."""
        try:
            soc = self.socs[job.soc]
        except KeyError:
            raise EngineError(
                f"job {job.index} references unknown SOC {job.soc!r}; "
                f"known: {sorted(self.socs)}"
            ) from None
        if job.constraints is None:
            return soc, None
        try:
            return soc, self.constraints[job.constraints]
        except KeyError:
            raise EngineError(
                f"job {job.index} references unknown constraint set "
                f"{job.constraints!r}; known: {sorted(self.constraints)}"
            ) from None

"""Fixed-width TAM baseline (the architecture style of [12] and [13]).

In a fixed-width test access architecture the total SOC TAM width ``W`` is
explicitly partitioned into ``B`` buses of widths ``w_1 + ... + w_B = W``;
every core is assigned to exactly one bus and the cores on a bus are tested
sequentially.  The SOC testing time is the largest bus load:

    ``T = max_b  sum_{i on bus b} T_i(w_b)``

The optimizer below enumerates all partitions of ``W`` into at most
``max_buses`` parts (bounded, since ``max_buses`` is small) and assigns cores
to buses with a longest-processing-time-first heuristic, keeping the best
architecture found.  The paper's point -- that such architectures waste TAM
wires compared with flexible-width rectangle packing -- is reproduced by
comparing the resulting makespan against :func:`repro.core.scheduler.schedule_soc`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.rectangles import RectangleSet, resolve_rectangle_sets
from repro.core.scheduler import SchedulerConfig
from repro.schedule.schedule import ScheduleSegment, TestSchedule
from repro.soc.constraints import ConstraintSet
from repro.soc.soc import Soc
from repro.wrapper.pareto import DEFAULT_MAX_WIDTH


@dataclass(frozen=True)
class FixedWidthResult:
    """The best fixed-width architecture found for one SOC and total width."""

    schedule: TestSchedule
    bus_widths: Tuple[int, ...]
    assignment: Dict[str, int]

    @property
    def makespan(self) -> int:
        """SOC testing time of the fixed-width architecture."""
        return self.schedule.makespan


def _partitions(total: int, parts: int, minimum: int = 1) -> List[Tuple[int, ...]]:
    """All non-increasing partitions of ``total`` into exactly ``parts`` parts."""
    if parts == 1:
        return [(total,)] if total >= minimum else []
    result = []
    for first in range(minimum, total - minimum * (parts - 1) + 1):
        for rest in _partitions(total - first, parts - 1, first):
            result.append((first,) + rest)
    return result


def _assign_cores(
    core_times: Dict[str, Dict[int, int]], bus_widths: Sequence[int]
) -> Tuple[Dict[str, int], List[int]]:
    """LPT assignment of cores to buses; returns (assignment, bus loads)."""
    loads = [0] * len(bus_widths)
    assignment: Dict[str, int] = {}
    # Longest test first (using each core's time on the widest bus as the key).
    widest = max(bus_widths)
    order = sorted(
        core_times, key=lambda name: core_times[name][widest], reverse=True
    )
    for name in order:
        best_bus = min(
            range(len(bus_widths)),
            key=lambda b: (loads[b] + core_times[name][bus_widths[b]], b),
        )
        assignment[name] = best_bus
        loads[best_bus] += core_times[name][bus_widths[best_bus]]
    return assignment, loads


def run_fixed_width(
    soc: Soc,
    total_width: int,
    max_buses: int = 3,
    max_core_width: int = DEFAULT_MAX_WIDTH,
    rectangle_sets: Optional[Dict[str, RectangleSet]] = None,
) -> FixedWidthResult:
    """Best fixed-width TAM architecture with at most ``max_buses`` buses.

    The implementation behind the ``"fixed-width"`` solver of the registry
    (:mod:`repro.solvers`).  Precedence and concurrency constraints are
    trivially satisfied because cores on one bus run sequentially, but power
    constraints are not modelled by this baseline.  ``rectangle_sets`` may
    supply pre-built Pareto sets (built with ``max_width == max_core_width``).
    """
    if total_width <= 0:
        raise ValueError("total TAM width must be positive")
    sets = resolve_rectangle_sets(soc, max_core_width, rectangle_sets)
    cap = min(total_width, max_core_width)
    # Precompute each core's testing time at every candidate bus width.
    candidate_widths = sorted({w for b in range(1, max_buses + 1) for w in range(1, cap + 1)})
    core_times: Dict[str, Dict[int, int]] = {
        core.name: {w: sets[core.name].time_at(w) for w in candidate_widths}
        for core in soc.cores
    }

    best: Optional[FixedWidthResult] = None
    for buses in range(1, min(max_buses, total_width, len(soc.cores)) + 1):
        for widths in _partitions(min(total_width, cap * buses), buses):
            if any(w > cap for w in widths):
                continue
            assignment, loads = _assign_cores(core_times, widths)
            makespan = max(loads)
            if best is not None and makespan >= best.makespan:
                continue
            segments = []
            clocks = [0] * buses
            for name, bus in assignment.items():
                duration = core_times[name][widths[bus]]
                segments.append(
                    ScheduleSegment(
                        core=name,
                        start=clocks[bus],
                        end=clocks[bus] + duration,
                        width=widths[bus],
                    )
                )
                clocks[bus] += duration
            schedule = TestSchedule(
                soc_name=soc.name,
                total_width=total_width,
                segments=tuple(segments),
            )
            best = FixedWidthResult(
                schedule=schedule, bus_widths=widths, assignment=assignment
            )
    assert best is not None
    return best


def fixed_width_schedule(
    soc: Soc,
    total_width: int,
    constraints: Optional[ConstraintSet] = None,
    config: Optional[SchedulerConfig] = None,
    max_buses: int = 3,
    max_core_width: int = DEFAULT_MAX_WIDTH,
) -> FixedWidthResult:
    """Deprecated alias of :func:`run_fixed_width`.

    Prefer ``Session().solve(ScheduleRequest(..., solver="fixed-width"))``
    from :mod:`repro.solvers`.  ``constraints`` and ``config`` are accepted
    for signature compatibility with the old ``schedule_soc`` shape and
    ignored, exactly as before; signature and results are unchanged.
    """
    del constraints, config  # intentionally unused; see docstring
    warnings.warn(
        "fixed_width_schedule is deprecated; use "
        'Session.solve(ScheduleRequest(..., solver="fixed-width")) '
        "(see repro.solvers) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_fixed_width(
        soc, total_width, max_buses=max_buses, max_core_width=max_core_width
    )

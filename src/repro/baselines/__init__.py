"""Baseline TAM architectures and packers the paper compares against.

* :mod:`~repro.baselines.fixed_width` -- fixed-width TAM architectures in the
  style of the authors' earlier work [12, 13]: the SOC TAM width is
  partitioned into a small number of buses and every core is assigned to
  exactly one bus.  Shows why flexible-width (rectangle packing) TAMs use
  wires more efficiently.
* :mod:`~repro.baselines.shelf` -- classic level-oriented (shelf) rectangle
  packing [8]: a simple NFD packer over one rectangle per core.
* :mod:`~repro.baselines.exact` -- an exhaustive reference packer for tiny
  SOCs, used by the test suite to sanity-check the heuristic scheduler.
"""

from repro.baselines.fixed_width import (
    FixedWidthResult,
    fixed_width_schedule,
    run_fixed_width,
)
from repro.baselines.shelf import run_shelf, shelf_schedule
from repro.baselines.exact import exhaustive_schedule, run_exhaustive

__all__ = [
    "FixedWidthResult",
    "fixed_width_schedule",
    "run_fixed_width",
    "shelf_schedule",
    "run_shelf",
    "exhaustive_schedule",
    "run_exhaustive",
]

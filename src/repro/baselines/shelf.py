"""Level-oriented (shelf) rectangle packing baseline [8].

Coffman et al.'s level-oriented algorithms pack rectangles into horizontal
levels; here the bin is rotated the same way the paper draws it (height =
TAM wires, unbounded time axis), so a *shelf* is a time interval during which
a fixed group of cores is tested side by side:

1. pick one rectangle per core (its testing time at the preferred TAM width,
   computed exactly as the main scheduler does);
2. sort the rectangles by decreasing testing time;
3. fill shelves next-fit: add rectangles to the current shelf while their
   total TAM width fits in ``W``; when one does not fit, close the shelf
   (its duration is the longest test on it) and open a new one.

The resulting makespan is the sum of shelf durations.  The algorithm is the
classic comparator for the paper's flexible packer: it never lets a test
span shelf boundaries, so TAM wires idle whenever tests on a shelf have
unequal lengths.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.rectangles import RectangleSet, resolve_rectangle_sets
from repro.core.scheduler import SchedulerConfig
from repro.schedule.schedule import ScheduleSegment, TestSchedule
from repro.soc.constraints import ConstraintSet
from repro.soc.soc import Soc


@dataclass
class _Shelf:
    start: int
    used_width: int = 0
    duration: int = 0
    segments: Optional[List[ScheduleSegment]] = None

    def __post_init__(self) -> None:
        if self.segments is None:
            self.segments = []


def run_shelf(
    soc: Soc,
    total_width: int,
    config: Optional[SchedulerConfig] = None,
    rectangle_sets: Optional[Dict[str, RectangleSet]] = None,
) -> TestSchedule:
    """Pack the SOC with next-fit-decreasing shelf packing.

    The implementation behind the ``"shelf"`` solver of the registry
    (:mod:`repro.solvers`).  ``config`` supplies the preferred-width
    parameters so the comparison against the flexible packer is
    apples-to-apples; ``rectangle_sets`` may supply pre-built Pareto sets
    (built with ``max_width == config.max_core_width``).
    """
    if total_width <= 0:
        raise ValueError("total TAM width must be positive")
    config = config or SchedulerConfig()
    sets = resolve_rectangle_sets(soc, config.max_core_width, rectangle_sets)
    width_cap = min(config.max_core_width, total_width)

    rectangles = []
    for core in soc.cores:
        rect = sets[core.name]
        width = rect.preferred_width(config.percent, config.delta, width_cap)
        rectangles.append((core.name, width, rect.time_at(width)))
    rectangles.sort(key=lambda item: item[2], reverse=True)

    shelves: List[_Shelf] = [_Shelf(start=0)]
    for name, width, time in rectangles:
        shelf = shelves[-1]
        if shelf.used_width + width > total_width and shelf.used_width > 0:
            new_start = shelf.start + shelf.duration
            shelf = _Shelf(start=new_start)
            shelves.append(shelf)
        assert shelf.segments is not None
        shelf.segments.append(
            ScheduleSegment(core=name, start=shelf.start, end=shelf.start + time, width=width)
        )
        shelf.used_width += width
        shelf.duration = max(shelf.duration, time)

    segments: List[ScheduleSegment] = []
    for shelf in shelves:
        assert shelf.segments is not None
        segments.extend(shelf.segments)
    return TestSchedule(
        soc_name=soc.name, total_width=total_width, segments=tuple(segments)
    )


def shelf_schedule(
    soc: Soc,
    total_width: int,
    constraints: Optional[ConstraintSet] = None,
    config: Optional[SchedulerConfig] = None,
) -> TestSchedule:
    """Deprecated alias of :func:`run_shelf`.

    Prefer ``Session().solve(ScheduleRequest(..., solver="shelf"))`` from
    :mod:`repro.solvers`.  ``constraints`` are ignored (the baseline predates
    constraint-driven scheduling), exactly as before; signature and results
    are unchanged.
    """
    del constraints  # the classic baseline is unconstrained
    warnings.warn(
        "shelf_schedule is deprecated; use "
        'Session.solve(ScheduleRequest(..., solver="shelf")) '
        "(see repro.solvers) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_shelf(soc, total_width, config=config)

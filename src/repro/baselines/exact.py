"""Exhaustive reference packer for tiny SOCs.

Used by the test-suite (and the ablation benchmarks) to sanity-check the
heuristic scheduler: for SOCs with a handful of cores it enumerates every
combination of Pareto-optimal width per core and every core ordering, placing
each core at the earliest time at which its wires are available
(left-justified placement).  The best makespan over all combinations is a
strong reference point: it is optimal whenever some optimal schedule is a
left-justified permutation schedule, which holds for the small instances the
tests construct.

The search space is ``prod_i |R_i| * n!`` so the function refuses to run on
more than ``max_cores`` cores.
"""

from __future__ import annotations

import warnings
from itertools import permutations, product
from typing import Dict, List, Optional, Tuple

from repro.core.rectangles import RectangleSet, resolve_rectangle_sets
from repro.core.scheduler import SchedulerConfig
from repro.schedule.schedule import ScheduleSegment, TestSchedule
from repro.soc.constraints import ConstraintSet
from repro.soc.soc import Soc


def _earliest_start(
    placed: List[Tuple[int, int, int]], width: int, duration: int, total_width: int
) -> int:
    """Earliest left-justified start time for a (width, duration) rectangle.

    ``placed`` holds (start, end, width) of already-placed rectangles.
    """
    candidate_times = sorted({0} | {end for _, end, _ in placed})
    for start in candidate_times:
        end = start + duration
        # Check capacity at every breakpoint inside [start, end).
        breakpoints = sorted(
            {start}
            | {s for s, _, _ in placed if start < s < end}
        )
        feasible = True
        for point in breakpoints:
            used = sum(w for s, e, w in placed if s <= point < e)
            if used + width > total_width:
                feasible = False
                break
        if feasible:
            return start
    raise AssertionError("a start time always exists after the last placed rectangle")


def run_exhaustive(
    soc: Soc,
    total_width: int,
    constraints: Optional[ConstraintSet] = None,
    config: Optional[SchedulerConfig] = None,
    max_cores: int = 6,
    max_widths_per_core: int = 8,
    rectangle_sets: Optional[Dict[str, RectangleSet]] = None,
) -> TestSchedule:
    """Best left-justified permutation schedule over all Pareto width choices.

    The implementation behind the ``"exhaustive"`` solver of the registry
    (:mod:`repro.solvers`).  Only non-preemptive, unconstrained scheduling is
    supported (Problem 1); passing a non-trivial ``constraints`` raises
    ``ValueError``.  ``rectangle_sets`` may supply pre-built Pareto sets
    (built with ``max_width == min(config.max_core_width, total_width)``).
    """
    if constraints is not None and (
        constraints.precedence or constraints.concurrency or constraints.power_max
    ):
        raise ValueError("the exhaustive reference packer only handles Problem 1")
    if len(soc.cores) > max_cores:
        raise ValueError(
            f"exhaustive search limited to {max_cores} cores, SOC has {len(soc.cores)}"
        )
    config = config or SchedulerConfig()
    sets = resolve_rectangle_sets(
        soc, min(config.max_core_width, total_width), rectangle_sets
    )

    names = [core.name for core in soc.cores]
    choices: Dict[str, List[Tuple[int, int]]] = {}
    for name in names:
        points = [(p.width, p.time) for p in sets[name].points if p.width <= total_width]
        if not points:
            points = [(1, sets[name].time_at(1))]
        # Keep the widest (fastest) options first and cap the number of choices.
        points = sorted(points, key=lambda wt: wt[0], reverse=True)[:max_widths_per_core]
        choices[name] = points

    best_segments: Optional[List[ScheduleSegment]] = None
    best_makespan: Optional[int] = None
    for widths in product(*(choices[name] for name in names)):
        for order in permutations(range(len(names))):
            placed: List[Tuple[int, int, int]] = []
            segments: List[ScheduleSegment] = []
            for index in order:
                width, duration = widths[index]
                start = _earliest_start(placed, width, duration, total_width)
                placed.append((start, start + duration, width))
                segments.append(
                    ScheduleSegment(
                        core=names[index], start=start, end=start + duration, width=width
                    )
                )
            makespan = max(segment.end for segment in segments)
            if best_makespan is None or makespan < best_makespan:
                best_makespan = makespan
                best_segments = segments
    assert best_segments is not None
    return TestSchedule(
        soc_name=soc.name, total_width=total_width, segments=tuple(best_segments)
    )


def exhaustive_schedule(
    soc: Soc,
    total_width: int,
    constraints: Optional[ConstraintSet] = None,
    config: Optional[SchedulerConfig] = None,
    max_cores: int = 6,
    max_widths_per_core: int = 8,
) -> TestSchedule:
    """Deprecated alias of :func:`run_exhaustive`.

    Prefer ``Session().solve(ScheduleRequest(..., solver="exhaustive"))``
    from :mod:`repro.solvers`.  Signature and results are unchanged.
    """
    warnings.warn(
        "exhaustive_schedule is deprecated; use "
        'Session.solve(ScheduleRequest(..., solver="exhaustive")) '
        "(see repro.solvers) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_exhaustive(
        soc,
        total_width,
        constraints=constraints,
        config=config,
        max_cores=max_cores,
        max_widths_per_core=max_widths_per_core,
    )

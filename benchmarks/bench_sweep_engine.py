"""Experiment E9 -- sweep engine: serial vs. parallel wall-clock time.

Runs the Table 1 experiment grid (width x scheduler mode x percent/delta/
slack) for d695 and p93791 twice -- once serially, once across a worker
pool -- and reports the wall-clock speedup.  The engine guarantees the two
runs produce identical rows, which this benchmark also asserts.

By default the speedup is report-only: on shared CI runners (or grids this
small) pool start-up and timing noise make a hard wall-clock assertion
flaky.  Set ``SWEEP_BENCH_STRICT=1`` on a quiet machine with >= 4 cores to
enforce the >= 2x target on the p93791 grid.

Run explicitly (benchmark files are not collected by the default suite):

    PYTHONPATH=src python -m pytest benchmarks/bench_sweep_engine.py -s
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import write_result
from repro.analysis.experiments import run_table1
from repro.engine.jobs import EngineContext
from repro.engine.runner import prime_context_caches
from repro.soc.benchmarks import get_benchmark
from repro.wrapper.pareto import DEFAULT_MAX_WIDTH

WORKERS = min(4, os.cpu_count() or 1)
STRICT = os.environ.get("SWEEP_BENCH_STRICT") == "1"

# One moderate grid per SOC: 4 widths x 3 modes x (4 * 2 * 2) parameters
# = 192 independent scheduling jobs.
GRID = dict(
    widths=(16, 32, 48, 64),
    percents=(1, 5, 10, 25),
    deltas=(0, 2),
    slacks=(0, 3),
)


def _timed(soc, workers):
    started = time.perf_counter()
    rows = run_table1(soc, workers=workers, **GRID)
    return rows, time.perf_counter() - started


@pytest.mark.parametrize("soc_name", ["d695", "p93791"])
def test_sweep_engine_speedup(results_dir, soc_name):
    soc = get_benchmark(soc_name)
    # Warm the parent-process Pareto caches so neither timed run pays the
    # one-off curve construction (fork workers inherit these; the pool
    # spin-up itself is part of the parallel cost being measured).
    prime_context_caches(
        EngineContext.for_soc(soc), {(soc.name, DEFAULT_MAX_WIDTH)}
    )

    serial_rows, serial_time = _timed(soc, workers=0)
    parallel_rows, parallel_time = _timed(soc, workers=WORKERS)

    assert parallel_rows == serial_rows, "parallel sweep must be bit-identical"

    speedup = serial_time / parallel_time if parallel_time > 0 else float("inf")
    grid_jobs = 4 * 3 * len(GRID["percents"]) * len(GRID["deltas"]) * len(GRID["slacks"])
    report = "\n".join(
        [
            f"SOC                 : {soc_name}",
            f"jobs in grid        : {grid_jobs}",
            f"workers             : {WORKERS} (of {os.cpu_count()} cpus)",
            f"serial wall time    : {serial_time:.3f} s",
            f"parallel wall time  : {parallel_time:.3f} s",
            f"speedup             : {speedup:.2f}x",
            "rows identical      : yes",
        ]
    )
    write_result(results_dir, f"sweep_engine_{soc_name}.txt", report)

    # Pool dispatch overhead only pays off with real parallel hardware, and
    # the d695 grid is too small (~0.2 s serial) to amortise it at all --
    # enforce the target only when explicitly requested, and only on the
    # p93791 grid, whose per-job cost dominates the pool overhead.
    if STRICT and soc_name == "p93791" and (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, f"expected >= 2x speedup on >= 4 cores, got {speedup:.2f}x"

"""Experiment B1 -- flexible-width rectangle packing vs. baseline architectures.

Compares the paper's flexible-width packer against (i) the strongest
fixed-width TAM architecture with up to three buses (the architecture style
of the authors' earlier work [12, 13]) and (ii) classic level-oriented shelf
packing [8], on d695 and p22810 across the Table 1 TAM widths.
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.analysis.reporting import format_table
from repro.baselines.fixed_width import fixed_width_schedule
from repro.baselines.shelf import shelf_schedule
from repro.core.lower_bounds import lower_bound
from repro.core.scheduler import best_schedule
from repro.soc.benchmarks import get_benchmark

WIDTHS = (16, 32, 48, 64)


@pytest.mark.parametrize("soc_name", ["d695", "p22810"])
def test_flexible_vs_baselines(benchmark, results_dir, soc_name):
    soc = get_benchmark(soc_name)

    def run():
        rows = []
        for width in WIDTHS:
            bound = lower_bound(soc, width)
            flexible = best_schedule(soc, width).makespan
            fixed = fixed_width_schedule(soc, width, max_buses=3).makespan
            shelf = shelf_schedule(soc, width).makespan
            rows.append((width, bound, flexible, fixed, shelf, fixed / flexible, shelf / flexible))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    text = format_table(
        ("W", "LB", "flexible", "fixed-width", "shelf", "fixed/flex", "shelf/flex"),
        rows,
    )
    write_result(results_dir, f"baselines_{soc_name}.txt", text)

    for width, bound, flexible, fixed, shelf, _, _ in rows:
        assert flexible >= bound
        # Shelf packing never beats the flexible packer.
        assert flexible <= shelf
    # At the widest TAM the flexible packer strictly beats the fixed-width
    # architecture (the paper's headline architectural claim); at narrow TAMs
    # it stays within a few percent of it.
    final = rows[-1]
    assert final[2] < final[3]
    first = rows[0]
    assert first[2] <= 1.06 * first[3]

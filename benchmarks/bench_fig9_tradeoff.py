"""Experiments E4-E6 -- Figure 9: T(W), D(W) and the cost curves for p22810.

Panel (a): SOC testing time vs. TAM width (staircase).
Panel (b): tester data volume D(W) = W * T(W) (non-monotonic, local minima at
           the Pareto-optimal widths of the T curve).
Panels (c)/(d): the normalised cost C(W) for alpha = 0.5 and 0.75 ("U" shaped).
"""

from __future__ import annotations

from conftest import write_result
from repro.analysis.experiments import figure9_curves
from repro.analysis.reporting import ascii_plot, format_figure_series
from repro.soc.benchmarks import p22810

WIDTHS = tuple(range(4, 81, 2))
ALPHAS = (0.5, 0.75)


def test_figure9_curves(benchmark, results_dir):
    soc = p22810()

    data = benchmark.pedantic(
        lambda: figure9_curves(soc, widths=WIDTHS, alphas=ALPHAS), rounds=1, iterations=1
    )
    sweep = data.sweep

    sections = [
        ascii_plot(data.time_curve, title="Figure 9(a): testing time T(W) for p22810"),
        "",
        ascii_plot(data.volume_curve, title="Figure 9(b): tester data volume D(W)"),
        "",
    ]
    for alpha in ALPHAS:
        sections.append(
            ascii_plot(
                data.cost_curves[alpha],
                title=f"Figure 9(c/d): cost C(W) for alpha={alpha}",
            )
        )
        sections.append("")
    sections.append(
        f"T_min = {sweep.min_testing_time} at W = {sweep.width_of_min_time}; "
        f"D_min = {sweep.min_data_volume} at W = {sweep.width_of_min_volume}"
    )
    sections.append("")
    sections.append(
        format_figure_series(
            list(zip(sweep.widths, sweep.testing_times)),
            x_label="TAM width",
            y_label="testing time",
        )
    )
    write_result(results_dir, "figure9_p22810.txt", "\n".join(sections))

    # Shape checks mirroring the paper's observations.
    times = list(sweep.testing_times)
    assert all(a >= b for a, b in zip(times, times[1:]))  # (a) staircase
    volumes = list(sweep.data_volumes)
    assert any(a > b for a, b in zip(volumes, volumes[1:]))  # (b) non-monotone
    assert any(a < b for a, b in zip(volumes, volumes[1:]))
    # The minimum-volume width is a Pareto width of the T curve and is
    # narrower than the minimum-time width.
    assert sweep.width_of_min_volume in sweep.pareto_widths()
    assert sweep.width_of_min_volume < sweep.width_of_min_time
    # (c)/(d): the cost curve minimum lies strictly inside the sweep for
    # mid-range alpha and moves toward wider TAMs as alpha grows.
    effective_half = sweep.effective_width(0.5).width
    effective_three_quarters = sweep.effective_width(0.75).width
    assert effective_half <= effective_three_quarters

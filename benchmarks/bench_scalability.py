"""Extension experiments: scalability and multisite batch testing.

The paper claims the rectangle-packing algorithm "is scalable for large
industrial SOCs".  This module quantifies that with generated SOC families
of growing size, and evaluates the multisite-testing extension (the paper's
stated motivation for trading TAM width against tester data volume).
"""

from __future__ import annotations

import time

from conftest import write_result
from repro.analysis.multisite import TesterModel, best_multisite_width, evaluate_multisite
from repro.analysis.reporting import format_table
from repro.core.data_volume import sweep_tam_widths
from repro.core.lower_bounds import lower_bound
from repro.core.scheduler import schedule_soc
from repro.soc.benchmarks import d695
from repro.soc.generator import GeneratorProfile, generate_soc


def test_scalability_with_core_count(benchmark, results_dir):
    """Scheduler runtime and quality as the number of cores grows."""

    sizes = (10, 20, 40, 80)

    def run():
        rows = []
        for size in sizes:
            profile = GeneratorProfile(
                min_cores=size, max_cores=size, max_scan_cells=3000, max_patterns=200
            )
            soc = generate_soc(seed=size, profile=profile)
            start = time.perf_counter()
            schedule = schedule_soc(soc, 64)
            elapsed = time.perf_counter() - start
            bound = lower_bound(soc, 64)
            rows.append(
                (size, bound, schedule.makespan, round(schedule.makespan / bound, 3),
                 round(elapsed * 1000, 1))
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(("cores", "LB", "makespan", "ratio", "runtime (ms)"), rows)
    write_result(results_dir, "scalability_core_count.txt", text)

    for _, bound, makespan, _, runtime_ms in rows:
        assert makespan >= bound
        assert runtime_ms < 5000.0  # the paper's < 5 s claim, with huge margin
    # Quality does not degrade badly with size.
    assert rows[-1][3] < 1.4


def test_multisite_batch_extension(benchmark, results_dir):
    """Multisite batch testing: the narrow-TAM motivation quantified on d695."""

    soc = d695()
    widths = (8, 12, 16, 24, 32, 48, 64)
    tester = TesterModel(channels=128, buffer_depth=30_000, reload_cycles=200_000)
    batch = 2_000

    def run():
        sweep = sweep_tam_widths(soc, widths)
        return sweep, evaluate_multisite(sweep, tester, batch)

    sweep, points = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (p.width, p.testing_time, p.sites, p.buffer_reloads, p.insertions, p.batch_time)
        for p in points
    ]
    best = best_multisite_width(sweep, tester, batch)
    text = "\n".join(
        [
            format_table(
                ("W", "T(W)", "sites", "reloads", "insertions", "batch cycles"), rows
            ),
            "",
            f"best single-device width: {sweep.width_of_min_time}; "
            f"best batch width: {best.width} ({best.sites} sites)",
        ]
    )
    write_result(results_dir, "multisite_batch.txt", text)

    # The batch-optimal TAM is narrower than the single-device optimum -- the
    # paper's motivating observation for Problem 3.
    assert best.width < sweep.width_of_min_time

"""Ablations A1-A3 -- the scheduler's heuristic knobs.

A1: the preferred-width percentage ``q`` and the ``delta`` bump heuristic
    (paper subroutine ``Initialize``, Figure 5) -- the paper's p34392
    bottleneck-core anecdote is the motivating example.
A2: the idle-insertion slack (the paper found 3 wires best for its SOCs).
A3: the preemption limit (0 / 1 / 2 / 4) versus the si+so resume penalty.
"""

from __future__ import annotations


from conftest import write_result
from repro.analysis.reporting import format_table
from repro.core.lower_bounds import lower_bound
from repro.core.scheduler import SchedulerConfig, best_schedule, schedule_soc
from repro.soc.benchmarks import d695, p34392
from repro.soc.constraints import ConstraintSet


def test_ablation_percent_and_delta(benchmark, results_dir):
    """A1: sweep q with delta 0 vs 4 on d695 (W=32) and p34392 (W=28)."""

    cases = ((d695(), 32), (p34392(), 28))

    def run():
        rows = []
        for soc, width in cases:
            for percent in (1, 5, 10, 25, 40, 60):
                for delta in (0, 4):
                    config = SchedulerConfig(percent=percent, delta=delta)
                    makespan = schedule_soc(soc, width, config=config).makespan
                    rows.append((soc.name, width, percent, delta, makespan))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(("SOC", "W", "percent q", "delta", "testing time"), rows)
    write_result(results_dir, "ablation_percent_delta.txt", text)

    # The knobs matter: for each SOC the spread across configurations is real.
    for soc, width in cases:
        times = [r[4] for r in rows if r[0] == soc.name]
        assert max(times) > min(times)
        assert min(times) >= lower_bound(soc, width)


def test_ablation_insertion_slack(benchmark, results_dir):
    """A2: the idle-insertion slack (0 disables squeezing, 3 is the paper's pick)."""

    soc = d695()
    widths = (16, 32, 48, 64)

    def run():
        rows = []
        for width in widths:
            entries = [width, lower_bound(soc, width)]
            for slack in (0, 1, 3, 6, 10):
                best = best_schedule(
                    soc, width, percents=(1, 10, 25, 60), deltas=(0, 2), slacks=(slack,)
                )
                entries.append(best.makespan)
            rows.append(tuple(entries))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ("W", "LB", "slack=0", "slack=1", "slack=3", "slack=6", "slack=10"), rows
    )
    write_result(results_dir, "ablation_insertion_slack.txt", text)

    for row in rows:
        assert min(row[2:]) >= row[1]


def test_ablation_preemption_limit(benchmark, results_dir):
    """A3: preemption limits 0/1/2/4 across the Table 1 widths of d695."""

    soc = d695()
    widths = (16, 32, 48, 64)
    grid = dict(percents=(1, 10, 25, 60), deltas=(0, 2), slacks=(0, 3))

    def run():
        rows = []
        for width in widths:
            entries = [width]
            for limit in (0, 1, 2, 4):
                constraints = ConstraintSet.for_soc(soc, default_preemptions=limit)
                best = best_schedule(soc, width, constraints=constraints, **grid)
                best.validate(soc, constraints)
                entries.append(best.makespan)
            rows.append(tuple(entries))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(("W", "limit=0", "limit=1", "limit=2", "limit=4"), rows)
    write_result(results_dir, "ablation_preemption_limit.txt", text)

    # Preemption is a trade-off (the resume penalty can win or lose), but it
    # must never be catastrophic -- the paper observes the same.
    for row in rows:
        non_preemptive = row[1]
        for value in row[2:]:
            assert value <= 1.1 * non_preemptive

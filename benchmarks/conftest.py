"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see the
per-experiment index in DESIGN.md).  Results are printed to stdout (run with
``pytest benchmarks/ --benchmark-only -s`` to see them) and also written to
``benchmarks/results/`` so EXPERIMENTS.md can reference a concrete run.
"""

from __future__ import annotations

import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)

from _bootstrap import ensure_src_on_path  # noqa: E402

ensure_src_on_path()

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

import pytest  # noqa: E402


@pytest.fixture(scope="session")
def results_dir() -> str:
    """Directory where benchmark result tables are written."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: str, name: str, text: str) -> None:
    """Write one experiment's text output to the results directory."""
    path = os.path.join(results_dir, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"\n=== {name} ===")
    print(text)

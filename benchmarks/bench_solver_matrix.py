"""Experiment E10 -- solver matrix: every registered solver on one session.

Runs every solver in the registry over {d695, p93791} x TAM widths
{16, 32, 64} through ``Session.solve(ScheduleRequest(...))``, twice on the
same session, and reports the per-cell makespans plus the wall-clock cost
of each full pass.  The second pass must be measurably cheaper: the
session's shared Pareto rectangle cache (and the per-process testing-time
curve memo underneath it) eliminates all wrapper-design work, which is the
dominant per-solve cost.

Solvers that refuse an instance (the exhaustive packer on SOCs with more
than 6 cores) are reported as ``n/a`` *with the refusal reason spelled out
below the matrix* -- refusal is part of their contract (d695 has 10 cores
and p93791 has 32, far beyond the exhaustive packer's n! feasibility
envelope), and a silent ``n/a`` used to be indistinguishable from a bug.

Run explicitly:

    PYTHONPATH=src python -m pytest benchmarks/bench_solver_matrix.py -s
"""

from __future__ import annotations

import time

from conftest import write_result
from repro.soc.benchmarks import get_benchmark
from repro.solvers import ScheduleRequest, Session
from repro.wrapper.pareto import clear_pareto_cache

SOCS = ("d695", "p93791")
WIDTHS = (16, 32, 64)

# Trim the "best" solver's 63-point default grid so a matrix pass stays
# cheap; 4 points are enough to exercise its grid plumbing.
SOLVER_OPTIONS = {"best": {"percents": (1, 25), "deltas": (0,), "slacks": (3, 6)}}


def _run_pass(session, socs):
    """One full solver x SOC x width pass.

    Returns ``(cells, refusals, elapsed seconds)``; a refused cell holds
    ``None`` in ``cells`` and its reason string in ``refusals``.
    """
    cells = {}
    refusals = {}
    started = time.perf_counter()
    for soc_name, soc in socs.items():
        for solver in session.solvers():
            options = SOLVER_OPTIONS.get(solver, {})
            for width in WIDTHS:
                try:
                    result = session.solve(
                        ScheduleRequest(
                            soc=soc, total_width=width, solver=solver, options=options
                        )
                    )
                    cells[(soc_name, solver, width)] = result.makespan
                except ValueError as error:  # refused the instance
                    cells[(soc_name, solver, width)] = None
                    refusals[(soc_name, solver, width)] = str(error)
    return cells, refusals, time.perf_counter() - started


def test_solver_matrix_and_pareto_cache_reuse(results_dir):
    # Cold start: drop the process-wide curve memo so the first pass pays
    # the full wrapper-design cost the cache is meant to amortise.
    clear_pareto_cache()
    session = Session()
    socs = {name: get_benchmark(name) for name in SOCS}

    first_cells, refusals, first_time = _run_pass(session, socs)
    second_cells, _, second_time = _run_pass(session, socs)

    # Determinism: the warm pass reproduces every cell exactly.
    assert second_cells == first_cells

    # A refusal must carry an explanation; an unexplained n/a is a bug in
    # the solver, not part of its contract.
    for key, makespan in first_cells.items():
        if makespan is None:
            assert key in refusals and refusals[key], f"silent n/a at {key}"

    info = session.cache_info()
    assert info.hits > 0, "the second pass must hit the shared rectangle cache"
    # The Pareto cache makes the second full pass measurably cheaper: all
    # wrapper-design work (the dominant per-solve cost) is amortised away.
    # The margin is large (~8x locally), but shared CI runners can hiccup,
    # so one slow warm pass gets a single re-measure before failing.
    if second_time >= first_time:
        retry_cells, _, second_time = _run_pass(session, socs)
        assert retry_cells == first_cells
    assert second_time < first_time, (
        f"warm pass ({second_time:.3f}s) should beat cold pass ({first_time:.3f}s)"
    )

    lines = [
        f"{'soc':<8} {'solver':<12} " + " ".join(f"W={w:<8}" for w in WIDTHS),
    ]
    for soc_name in SOCS:
        for solver in session.solvers():
            row = " ".join(
                f"{first_cells[(soc_name, solver, width)] or 'n/a':<10}"
                for width in WIDTHS
            )
            lines.append(f"{soc_name:<8} {solver:<12} {row}")
    if refusals:
        lines.append("")
        lines.append("refused cells (n/a above):")
        for (soc_name, solver, width), reason in sorted(refusals.items()):
            lines.append(f"  {soc_name} {solver} W={width}: {reason}")
    lines += [
        "",
        f"cold pass (empty caches) : {first_time:.3f} s",
        f"warm pass (shared cache) : {second_time:.3f} s",
        f"speedup                  : {first_time / max(second_time, 1e-9):.1f}x",
        f"rectangle cache          : {info.hits} hits, {info.misses} misses, "
        f"{info.entries} entries",
    ]
    write_result(results_dir, "solver_matrix.txt", "\n".join(lines))

"""Experiment E7 -- Table 2: TAM widths for tester data volume reduction.

For each SOC: the minimum testing time and data volume over a TAM-width
sweep, the widths at which they occur, and -- for the alpha values the paper
reports -- the effective TAM width minimising the normalised cost function,
with the testing time and data volume it yields.
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.analysis.experiments import TABLE2_ALPHAS, run_table2
from repro.analysis.reporting import table2_to_text
from repro.soc.benchmarks import get_benchmark

# Paper Table 2 reference (T_min, W@T_min, D_min, W@D_min) per SOC.
PAPER_TABLE2 = {
    "d695": (11285, 63, 675554, 22),
    "p22810": (140222, 63, 7377480, 44),
    "p34392": (544579, 32, 16659486, 27),
    "p93791": (503661, 62, 29399656, 22),
}

SWEEP_WIDTHS = tuple(range(8, 65, 2))


@pytest.mark.parametrize("soc_name", ["d695", "p22810", "p34392", "p93791"])
def test_table2(benchmark, results_dir, soc_name):
    soc = get_benchmark(soc_name)
    alphas = TABLE2_ALPHAS[soc_name]

    rows, sweep = benchmark.pedantic(
        lambda: run_table2(soc, alphas=alphas, widths=SWEEP_WIDTHS),
        rounds=1,
        iterations=1,
    )

    paper = PAPER_TABLE2[soc_name]
    text = "\n".join(
        [
            table2_to_text(rows),
            "",
            f"paper reference: T_min={paper[0]} at W={paper[1]}, "
            f"D_min={paper[2]} at W={paper[3]}",
        ]
    )
    write_result(results_dir, f"table2_{soc_name}.txt", text)

    # Shape checks: the minimum-volume width is narrower than (or equal to)
    # the minimum-time width, and every effective width lies between them.
    assert sweep.width_of_min_volume <= sweep.width_of_min_time
    for row in rows:
        assert sweep.width_of_min_volume <= row.effective_width <= max(sweep.widths)
        assert row.testing_time_at_effective >= sweep.min_testing_time
        assert row.data_volume_at_effective >= sweep.min_data_volume
        assert row.min_cost >= 1.0 - 1e-9
    # Larger alpha (more weight on time) never narrows the effective width.
    widths = [row.effective_width for row in rows]
    assert widths == sorted(widths)

"""Experiment E1 -- Figure 1: testing time vs. TAM width for Core 6 of p93791.

The paper's figure shows a staircase that drops steeply at small widths and
saturates at the highest Pareto-optimal width (47 for the real Core 6, where
the testing time settles at 114317 cycles).  The synthetic Core 6 stand-in is
calibrated to reproduce that shape.
"""

from __future__ import annotations

from conftest import write_result
from repro.analysis.experiments import figure1_staircase
from repro.analysis.reporting import ascii_plot, format_figure_series
from repro.soc.benchmarks import p93791
from repro.wrapper.pareto import pareto_points


def test_figure1_staircase(benchmark, results_dir):
    soc = p93791()
    core = soc.core("Core 6")

    series = benchmark.pedantic(
        lambda: figure1_staircase(core, max_width=64), rounds=1, iterations=1
    )

    points = pareto_points(core, 64)
    text = "\n".join(
        [
            ascii_plot(series, title="Figure 1: T(w) for Core 6 of p93791"),
            "",
            f"Pareto-optimal widths: {[p.width for p in points]}",
            f"Saturated testing time: {points[-1].time} cycles "
            "(paper: 114317 at width 47)",
            "",
            format_figure_series(series, x_label="TAM width", y_label="testing time"),
        ]
    )
    write_result(results_dir, "figure1_core6_staircase.txt", text)

    times = [t for _, t in series]
    # Staircase properties the paper highlights.
    assert all(a >= b for a, b in zip(times, times[1:]))
    assert 44 <= points[-1].width <= 50
    assert times[-1] == times[points[-1].width - 1]

"""Experiment E3 -- Table 1: wrapper/TAM co-optimization and test scheduling.

For each benchmark SOC and each TAM width the paper reports, regenerate the
lower bound and the non-preemptive, preemptive, and preemptive +
power-constrained testing times (best over the heuristic parameter grid).
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.analysis.experiments import TABLE1_WIDTHS, run_table1
from repro.analysis.reporting import table1_to_text
from repro.soc.benchmarks import get_benchmark

# Published Table 1 values, used only for the reproduction report (the
# synthetic Philips stand-ins are expected to match in shape, not value).
PAPER_TABLE1 = {
    ("d695", 16): (41232, 43410, 43423, 47574),
    ("d695", 32): (20616, 22229, 21757, 29039),
    ("d695", 48): (13744, 15698, 15499, 28441),
    ("d695", 64): (10308, 11285, 11354, 20004),
    ("p22810", 16): (421473, 466383, 459951, 527573),
    ("p22810", 32): (210737, 243779, 243978, 277151),
    ("p22810", 48): (140491, 164420, 162554, 213845),
    ("p22810", 64): (105369, 140222, 134732, 176076),
    ("p34392", 16): (936882, 1071043, 1082065, 1180187),
    ("p34392", 24): (624588, 728986, 702322, 1075971),
    ("p34392", 28): (544579, 617018, 615126, 1075242),
    ("p34392", 32): (544579, 544579, 544579, 1075242),
    ("p93791", 16): (1749388, 1860752, 1860752, 1966092),
    ("p93791", 32): (874694, 929311, 929311, 1247221),
    ("p93791", 48): (583130, 637717, 643605, 656214),
    ("p93791", 64): (437347, 503661, 492095, 631840),
}


def _render(soc_name, rows):
    lines = [table1_to_text(rows), "", "paper reference (LB / NP / P / P+power):"]
    for row in rows:
        paper = PAPER_TABLE1.get((soc_name, row.width))
        if paper:
            lines.append(
                f"  W={row.width}: paper LB={paper[0]} NP={paper[1]} "
                f"P={paper[2]} PW={paper[3]}"
            )
    return "\n".join(lines)


@pytest.mark.parametrize("soc_name", ["d695", "p22810", "p34392", "p93791"])
def test_table1(benchmark, results_dir, soc_name):
    """Regenerate the Table 1 rows for one SOC (single benchmark round)."""
    soc = get_benchmark(soc_name)
    widths = TABLE1_WIDTHS[soc_name]

    rows = benchmark.pedantic(
        lambda: run_table1(soc, widths=widths), rounds=1, iterations=1
    )

    write_result(results_dir, f"table1_{soc_name}.txt", _render(soc_name, rows))

    for row in rows:
        assert row.non_preemptive >= row.lower_bound
        assert row.preemptive >= row.lower_bound
        assert row.power_constrained >= row.lower_bound
        # Same shape as the paper: the heuristic lands within 25 % of the
        # lower bound (the paper achieves 0-33 % depending on SOC and width).
        assert row.non_preemptive <= 1.25 * row.lower_bound
    # Testing time scales roughly inversely with TAM width.
    assert rows[-1].non_preemptive < rows[0].non_preemptive

#!/usr/bin/env python
"""Perf-trajectory harness: the standalone face of ``repro bench``.

Runs one timing suite from :mod:`repro.analysis.perf` and writes a
machine-readable ``BENCH_<suite>.json`` (per-phase wall time, cache
statistics, schedule makespans + fingerprints for integrity), so every PR
leaves a comparable baseline behind:

    python benchmarks/harness.py --suite curves --json BENCH_curves.json
    python benchmarks/harness.py --suite solve  --json BENCH_solve.json
    python benchmarks/harness.py --suite sweep

``--check-golden benchmarks/golden_makespans.json`` exits non-zero when
any makespan or schedule fingerprint drifts from the checked-in golden
values -- CI runs exactly that on every push (the ``bench-smoke`` job).

Identical flags are available as ``repro bench`` once the package is
installed; this file only bootstraps ``src/`` onto ``sys.path`` so the
harness also runs from a bare checkout.
"""

from __future__ import annotations

import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)

from _bootstrap import ensure_src_on_path  # noqa: E402

ensure_src_on_path()

from repro.cli import main  # noqa: E402


if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))

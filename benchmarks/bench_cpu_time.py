"""Experiment E8 -- CPU time of the scheduler.

The paper reports that the rectangle-packing heuristic needs less than five
seconds per SOC on a 333 MHz Sun Ultra 10, several orders of magnitude less
than the exact method of [12].  Here pytest-benchmark measures a single
scheduling run (one parameter configuration) per SOC at the widest Table 1
TAM width, which is the configuration the paper's claim refers to.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import TABLE1_WIDTHS
from repro.core.scheduler import SchedulerConfig, schedule_soc
from repro.soc.benchmarks import get_benchmark


@pytest.mark.parametrize("soc_name", ["d695", "p22810", "p34392", "p93791"])
def test_single_schedule_cpu_time(benchmark, soc_name):
    soc = get_benchmark(soc_name)
    width = TABLE1_WIDTHS[soc_name][-1]
    config = SchedulerConfig(percent=10, delta=2)

    # Warm the wrapper-design cache once so the benchmark isolates the packer
    # itself (the paper's CPU-time figure likewise excludes one-off setup).
    schedule_soc(soc, width, config=config)

    schedule = benchmark(lambda: schedule_soc(soc, width, config=config))
    assert schedule.makespan > 0
    # The paper's headline: well under 5 seconds per run.
    assert benchmark.stats["mean"] < 5.0


def test_full_parameter_grid_cpu_time(benchmark):
    """The complete Table 1 grid for the largest SOC stays in interactive range."""
    from repro.core.scheduler import best_schedule

    soc = get_benchmark("p93791")
    schedule = benchmark.pedantic(
        lambda: best_schedule(soc, 64), rounds=1, iterations=1
    )
    assert schedule.makespan > 0

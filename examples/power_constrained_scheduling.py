#!/usr/bin/env python3
"""Constraint-driven, selectively preemptive test scheduling (Problem 2).

Scenario (the one the paper's introduction motivates): an SOC whose embedded
memories must be tested and diagnosed first so they can be used for system
test afterwards, whose hierarchical parent core must not be tested at the
same time as its children, whose two BIST-ed cores share one BIST engine,
and whose power rating must never be exceeded during test.  The larger cores
may be preempted up to twice.

The script schedules the SOC four ways -- unconstrained, precedence +
concurrency only, plus power, plus preemption -- and compares the testing
times, demonstrating how each constraint shapes the schedule.

Run with:  python examples/power_constrained_scheduling.py
"""

from repro import (
    ConstraintSet,
    Core,
    ScheduleRequest,
    Session,
    Soc,
    lower_bound,
    render_gantt,
)

SESSION = Session()  # one Pareto cache shared by every solve below


def build_soc() -> Soc:
    cores = (
        # Two embedded SRAMs: test these first ("abort at first fail").
        Core("sram0", inputs=24, outputs=18, patterns=40, scan_chains=(64, 64), power=220),
        Core("sram1", inputs=24, outputs=18, patterns=40, scan_chains=(64, 64), power=220),
        # CPU with a child co-processor inside its hierarchy.
        Core("cpu", inputs=40, outputs=36, patterns=120, scan_chains=(80,) * 8, power=520),
        Core("fpu", inputs=16, outputs=16, patterns=60, scan_chains=(48,) * 4, power=260,
             parent="cpu"),
        # Two DSPs sharing one BIST engine.
        Core("dsp0", inputs=20, outputs=20, patterns=90, scan_chains=(56,) * 6, power=380,
             bist_resource="membist"),
        Core("dsp1", inputs=20, outputs=20, patterns=90, scan_chains=(56,) * 6, power=380,
             bist_resource="membist"),
        # Peripheral glue logic.
        Core("periph", inputs=60, outputs=44, patterns=25, scan_chains=(30, 30), power=120),
    )
    return Soc("example-soc", cores)


def schedule_and_report(soc, width, constraints, label, grid):
    result = SESSION.solve(
        ScheduleRequest(
            soc=soc, total_width=width, solver="best",
            constraints=constraints, options=grid,
        )
    )
    schedule = result.schedule
    if constraints is not None:
        schedule.validate(soc, constraints)
    else:
        schedule.validate(soc)
    print(f"{label:<42} {schedule.makespan:>8} cycles "
          f"(peak power {schedule.peak_power(soc):.0f})")
    return schedule


def main() -> None:
    soc = build_soc()
    width = 32
    grid = dict(percents=(1, 5, 10, 25, 50), deltas=(0, 2), slacks=(0, 3))

    print(soc.summary())
    print()
    print(f"Total TAM width: {width} wires, "
          f"lower bound {lower_bound(soc, width)} cycles")
    print()

    memories_first = [("sram0", core.name) for core in soc.cores
                      if core.name not in ("sram0", "sram1")]
    memories_first += [("sram1", core.name) for core in soc.cores
                       if core.name not in ("sram0", "sram1")]

    power_budget = 1.15 * soc.max_test_power()
    preemptable = {"cpu": 2, "dsp0": 2, "dsp1": 2}

    schedule_and_report(soc, width, None, "unconstrained", grid)

    ordering = ConstraintSet.for_soc(soc, precedence=memories_first)
    schedule_and_report(soc, width, ordering, "+ memories first, hierarchy, shared BIST", grid)

    powered = ordering.with_power_max(power_budget)
    schedule_and_report(soc, width, powered, f"+ power budget ({power_budget:.0f})", grid)

    preemptive = powered.with_preemptions(preemptable)
    final = schedule_and_report(soc, width, preemptive, "+ selective preemption (limit 2)", grid)

    print()
    print(render_gantt(final))
    print()
    print("Preemption counts:", {
        core: final.preemptions_of(core) for core in soc.core_names
        if final.preemptions_of(core)
    } or "none used")


if __name__ == "__main__":
    main()

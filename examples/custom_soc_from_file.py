#!/usr/bin/env python3
"""Describe your own SOC in the ITC'02-style text format and schedule it.

Writes a small SOC description (including scheduling constraints) to a
temporary file, loads it back with the library's parser, runs the
constraint-driven scheduler, and prints the schedule -- the same flow a
system integrator would use with the ``repro-soc-test`` command-line tool:

    repro-soc-test schedule my_soc.soc 24

Run with:  python examples/custom_soc_from_file.py
"""

import tempfile
from pathlib import Path

from repro import ScheduleRequest, Session, load_soc, lower_bound, render_gantt

SOC_DESCRIPTION = """\
# A small set-top-box SOC
SocName stb_demo

Core video_dec  inputs=43 outputs=52 patterns=160 scan=96,96,92,90
Core audio_dsp  inputs=28 outputs=30 patterns=110 scan=64,64,60
Core usb_ctrl   inputs=35 outputs=31 patterns=75  scan=48,44
Core ddr_phy    inputs=51 outputs=47 patterns=40  scan=32,32,32,30
Core sec_engine inputs=22 outputs=26 patterns=90  scan=56,52 bist=crypto_bist
Core rng        inputs=8  outputs=9  patterns=30  scan=24    bist=crypto_bist
Core gpio       inputs=66 outputs=58 patterns=20

# The DDR interface is tested first so it can stream system-test data later,
# and the two crypto blocks share a BIST engine (never tested concurrently).
Precedence ddr_phy video_dec
Precedence ddr_phy audio_dsp
PowerMax 1400
MaxPreemptions video_dec 2
MaxPreemptions audio_dsp 2
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "stb_demo.soc"
        path.write_text(SOC_DESCRIPTION, encoding="utf-8")

        soc, constraints = load_soc(path)
        print(f"Loaded {soc.name} from {path.name}: {len(soc)} cores")
        print(f"Constraints: {constraints.describe()}")
        print()

        width = 24
        schedule = Session().solve(
            ScheduleRequest(
                soc=soc,
                total_width=width,
                solver="best",
                constraints=constraints,
                options=dict(
                    percents=(1, 5, 10, 25, 50), deltas=(0, 2), slacks=(0, 3)
                ),
            )
        ).schedule
        schedule.validate(soc, constraints)

        print(render_gantt(schedule))
        print()
        print(f"lower bound : {lower_bound(soc, width)} cycles")
        print(f"testing time: {schedule.makespan} cycles")
        print(f"peak power  : {schedule.peak_power(soc):.0f} "
              f"(budget {constraints.power_max:.0f})")
        ddr_end = schedule.core_summary("ddr_phy").last_end
        print(f"ddr_phy completes at {ddr_end}; "
              f"video_dec starts at {schedule.core_summary('video_dec').first_begin}, "
              f"audio_dsp at {schedule.core_summary('audio_dsp').first_begin}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Figure 1 reproduction: the testing-time staircase of a core.

For a given core, the testing time decreases with TAM width only at
Pareto-optimal points and is flat in between; beyond the highest
Pareto-optimal width, extra wires buy nothing.  This script plots the
staircase for Core 6 of the p93791 stand-in (the paper's Figure 1) and for
one of the d695 cores, and prints the Pareto-optimal widths and the paper's
"preferred width" for a few values of the q parameter.

Run with:  python examples/pareto_staircase.py
"""

from repro import d695, p93791, pareto_points, preferred_width, testing_time_curve
from repro.analysis.reporting import ascii_plot


def show_core(core, max_width=64):
    curve = testing_time_curve(core, max_width)
    series = list(zip(range(1, max_width + 1), curve))
    print(ascii_plot(series, title=f"Testing time vs TAM width for {core.name}"))

    points = pareto_points(core, max_width)
    print(f"\nPareto-optimal widths for {core.name}:")
    for point in points:
        print(f"  width {point.width:>2}: {point.time:>8} cycles")
    print(f"  (saturates at width {points[-1].width}; wider TAMs gain nothing)")

    print("\nPreferred widths (smallest width within q% of the saturated time):")
    for percent in (1, 5, 10, 25):
        width = preferred_width(core, max_width=max_width, percent=percent)
        print(f"  q = {percent:>2}%: width {width:>2} "
              f"({curve[width - 1]} cycles vs {curve[-1]} at saturation)")
    print()


def main() -> None:
    philips = p93791()
    show_core(philips.core("Core 6"))

    academic = d695()
    show_core(academic.core("s38417"))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Multisite testing: why a narrower TAM can test a production batch faster.

The paper motivates its tester-data-volume work with multisite testing: a
tester with a fixed number of channels tests several SOCs in parallel, so a
narrower per-SOC TAM means more sites per insertion — as long as the test
data still fits the per-channel buffer.  This example sweeps the TAM width of
the d695 SOC, models a small production tester, and reports the batch
testing time per TAM width, alongside the single-SOC view of Problem 3.

Run with:  python examples/multisite_testing.py
"""

from repro import TesterModel, d695, evaluate_multisite, best_multisite_width, sweep_tam_widths
from repro.analysis.reporting import format_table


def main() -> None:
    soc = d695()
    widths = (8, 12, 16, 24, 32, 48, 64)
    sweep = sweep_tam_widths(soc, widths)

    tester = TesterModel(channels=128, buffer_depth=30_000, reload_cycles=200_000)
    batch_size = 2_000

    print(f"SOC: {soc.name}; tester: {tester.channels} channels, "
          f"{tester.buffer_depth} bits/pin buffer, "
          f"{tester.reload_cycles} cycles per buffer reload")
    print(f"Production batch: {batch_size} devices")
    print()

    points = evaluate_multisite(sweep, tester, batch_size)
    rows = [
        (
            p.width,
            p.testing_time,
            p.sites,
            p.buffer_reloads,
            p.insertions,
            p.batch_time,
        )
        for p in points
    ]
    print(format_table(
        ("W per SOC", "T(W) cycles", "sites", "buffer reloads", "insertions", "batch cycles"),
        rows,
    ))
    print()

    best = best_multisite_width(sweep, tester, batch_size)
    fastest_single = sweep.width_of_min_time
    print(f"Fastest single-SOC test     : W = {fastest_single} "
          f"({sweep.min_testing_time} cycles per device)")
    print(f"Fastest batch (multisite)   : W = {best.width} "
          f"({best.batch_time} tester cycles for the whole batch, "
          f"{best.sites} sites in parallel)")
    if best.width < fastest_single:
        print("-> exactly the paper's point: the TAM width that minimises the batch "
              "cost is narrower than the one that minimises a single device's test time.")


if __name__ == "__main__":
    main()

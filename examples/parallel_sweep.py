"""Run a parameter sweep on the parallel sweep engine.

The sweep engine (``repro.engine``) expands a declarative parameter grid
into independent jobs and executes them either serially or across a
``multiprocessing`` worker pool -- with results guaranteed identical for
every worker count.  This example runs the Table 1 grid for d695 both ways,
checks the rows match, and shows the raw engine API (grids, jobs, grouped
results, CSV export).
"""

import os
import time

from repro import ParameterGrid, run_table1, table1_to_text
from repro.engine import (
    EngineContext,
    config_grid,
    expand_config_jobs,
    run_jobs,
)
from repro.soc.benchmarks import d695

WORKERS = min(4, os.cpu_count() or 1)


def main() -> None:
    soc = d695()

    # ------------------------------------------------------------------
    # High level: the Table 1 driver runs on the sweep engine; 'workers'
    # selects serial (0) or pool execution.
    # ------------------------------------------------------------------
    grid = dict(widths=(16, 32), percents=(1, 5, 10), deltas=(0, 2), slacks=(0, 3))

    started = time.perf_counter()
    serial_rows = run_table1(soc, workers=0, **grid)
    serial_time = time.perf_counter() - started

    started = time.perf_counter()
    parallel_rows = run_table1(soc, workers=WORKERS, **grid)
    parallel_time = time.perf_counter() - started

    print(f"Table 1 for {soc.name} on the sweep engine")
    print(table1_to_text(serial_rows))
    print()
    print(f"serial run        : {serial_time:.3f} s")
    print(f"{WORKERS} workers run     : {parallel_time:.3f} s")
    match = "identical" if serial_rows == parallel_rows else "DIFFERENT (bug!)"
    print(f"results           : {match}")

    # ------------------------------------------------------------------
    # Low level: declarative grid -> jobs -> grouped results.
    # ------------------------------------------------------------------
    heuristics = config_grid(percents=(1, 5, 10), deltas=(0, 2), slacks=(0, 3))
    print()
    print(f"heuristic grid    : {len(heuristics)} points over axes {heuristics.names}")

    context = EngineContext.for_soc(soc)
    jobs = []
    for width in (16, 32):
        jobs.extend(
            expand_config_jobs(
                soc.name,
                width,
                heuristics,
                group=(width,),
                start_index=len(jobs),
            )
        )
    results = run_jobs(jobs, context, workers=WORKERS)
    print(f"jobs executed     : {len(results)}")
    for width, best in sorted(results.best_by_group().items()):
        print(
            f"best at W={best.job.width:<3}: makespan {best.makespan} "
            f"(percent={best.job.config.percent}, delta={best.job.config.delta})"
        )

    csv_lines = results.to_csv().splitlines()
    print(f"CSV export        : {len(csv_lines) - 1} records, header:")
    print(f"  {csv_lines[0]}")

    grid_demo = ParameterGrid.of(width=(16, 32), mode=("np", "preemptive"))
    print(f"grid points       : {list(grid_demo.points())[:2]} ...")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: wrapper/TAM co-optimization and test scheduling on d695.

Builds the academic d695 benchmark SOC, co-optimizes wrappers and the TAM at
a total width of 32 wires, and prints the resulting test schedule as an ASCII
Gantt chart (the picture of Figure 2 in the paper), together with the lower
bound and the tester data volume.

Run with:  python examples/quickstart.py
"""

from repro import (
    d695,
    lower_bound,
    render_gantt,
    schedule_soc,
    tester_data_volume,
)


def main() -> None:
    soc = d695()
    total_width = 32

    print(soc.summary())
    print()

    schedule = schedule_soc(soc, total_width)
    schedule.validate(soc)

    print(render_gantt(schedule))
    print()

    bound = lower_bound(soc, total_width)
    print(f"lower bound on testing time : {bound} cycles")
    print(f"achieved testing time       : {schedule.makespan} cycles "
          f"({schedule.makespan / bound:.1%} of the bound)")
    print(f"TAM utilisation             : {schedule.tam_utilization:.1%}")
    print(f"tester data volume          : {tester_data_volume(schedule)} bits")
    print()
    print("Per-core assignment (width / begin / end):")
    for summary in schedule.summaries():
        print(
            f"  {summary.core:>8}: width {summary.widths[0]:>2}, "
            f"[{summary.first_begin:>6}, {summary.last_end:>6})"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: wrapper/TAM co-optimization and test scheduling on d695.

Builds the academic d695 benchmark SOC, co-optimizes wrappers and the TAM at
a total width of 32 wires, and prints the resulting test schedule as an ASCII
Gantt chart (the picture of Figure 2 in the paper), together with the lower
bound and the tester data volume.

Run with:  python examples/quickstart.py
"""

from repro import (
    ScheduleRequest,
    Session,
    d695,
    render_gantt,
)


def main() -> None:
    soc = d695()
    total_width = 32

    print(soc.summary())
    print()

    # One session, one front door: the paper scheduler and the lower bound
    # are both registry solvers sharing the session's Pareto cache.
    session = Session()
    result = session.solve(ScheduleRequest(soc=soc, total_width=total_width))
    schedule = result.schedule
    schedule.validate(soc)

    print(render_gantt(schedule))
    print()

    bound = session.solve(
        ScheduleRequest(soc=soc, total_width=total_width, solver="lower-bound")
    ).makespan
    print(f"lower bound on testing time : {bound} cycles")
    print(f"achieved testing time       : {result.makespan} cycles "
          f"({result.makespan / bound:.1%} of the bound)")
    print(f"TAM utilisation             : {schedule.tam_utilization:.1%}")
    print(f"tester data volume          : {result.data_volume} bits")
    print()
    print("Per-core assignment (width / begin / end):")
    for summary in schedule.summaries():
        print(
            f"  {summary.core:>8}: width {summary.widths[0]:>2}, "
            f"[{summary.first_begin:>6}, {summary.last_end:>6})"
        )


if __name__ == "__main__":
    main()

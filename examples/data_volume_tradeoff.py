#!/usr/bin/env python3
"""Tester data volume reduction and effective TAM width selection (Problem 3).

Multisite testing motivates narrow TAMs: the fewer tester channels one SOC
needs, the more SOCs can be tested in parallel on one tester, provided the
per-pin memory depth stays within the tester buffer.  This script sweeps the
TAM width for the p22810 stand-in, plots T(W), D(W) = W*T(W) and the
normalised cost C(W), and prints the effective TAM width for several values
of the trade-off parameter alpha (the paper's Table 2 / Figure 9).

Run with:  python examples/data_volume_tradeoff.py
"""

from repro import p22810, sweep_tam_widths
from repro.analysis.reporting import ascii_plot, format_table


def main() -> None:
    soc = p22810()
    widths = tuple(range(8, 65, 2))

    print(f"Sweeping TAM widths {widths[0]}..{widths[-1]} for {soc.name} "
          f"({len(soc)} cores)...")
    sweep = sweep_tam_widths(soc, widths)

    print()
    print(ascii_plot(list(zip(sweep.widths, sweep.testing_times)),
                     title="Testing time T(W)"))
    print()
    print(ascii_plot(list(zip(sweep.widths, sweep.data_volumes)),
                     title="Tester data volume D(W) = W * T(W)"))
    print()
    print(f"T_min = {sweep.min_testing_time} cycles at W = {sweep.width_of_min_time}")
    print(f"D_min = {sweep.min_data_volume} bits   at W = {sweep.width_of_min_volume}")
    print()

    alphas = (0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99)
    rows = []
    for alpha in alphas:
        point = sweep.effective_width(alpha)
        rows.append((alpha, point.width, point.testing_time, point.data_volume,
                     round(point.cost, 3)))
    print("Effective TAM widths (argmin of C = a*T/T_min + (1-a)*D/D_min):")
    print(format_table(("alpha", "W_e", "T @ W_e", "D @ W_e", "C_min"), rows))
    print()

    half = sweep.effective_width(0.5)
    print(ascii_plot([(p.width, p.cost) for p in sweep.cost_curve(0.5)],
                     title="Cost function C(W) for alpha = 0.5"))
    print()
    print(f"With alpha = 0.5 the system integrator would provision {half.width} "
          f"TAM wires: {half.testing_time} cycles "
          f"({half.testing_time / sweep.min_testing_time:.2f}x the minimum time) for "
          f"{half.data_volume} bits "
          f"({half.data_volume / sweep.min_data_volume:.2f}x the minimum volume).")


if __name__ == "__main__":
    main()

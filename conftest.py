"""Repository-level pytest configuration.

Makes the package importable straight from the source tree so the test suite
and benchmarks also run on minimal environments where ``pip install -e .``
is unavailable (e.g. offline machines without the ``wheel`` package).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

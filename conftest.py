"""Repository-level pytest configuration.

The actual ``sys.path`` bootstrap lives in :mod:`_bootstrap` so the benchmark
harness can share it; see that module's docstring.
"""

from _bootstrap import ensure_src_on_path

ensure_src_on_path()
